//! Turn experiment grids into the paper's tables and figures.
//!
//! Every public figure function takes the instruction budget, runs its grid
//! (in parallel), and renders an aligned text table with the same rows and
//! series the paper's figure plots, plus the mean the paper quotes in its
//! prose. [`run_experiment`] dispatches by name for the `figures` binary.

// The figure formatters walk several per-label report vectors in lock-step
// by benchmark index; an iterator rewrite would zip four-plus vectors and
// read worse than the index.
#![allow(clippy::needless_range_loop)]

use crate::checkpoint;
use crate::memo;
use crate::shard::{
    ExperimentFragment, FragmentEntry, ManifestExperiment, ShardSpec, SHARD_SCHEMA_VERSION,
};
use ppf_sim::experiments::{self, CellOutcome, PORT_COUNTS, TABLE_SIZES};
use ppf_sim::report::{f3, geomean, mean, pct, TextTable};
use ppf_sim::{CellFailure, SimReport};
use ppf_types::telemetry::TelemetryConfig;
use ppf_types::{json_struct, PpfError};
use ppf_workloads::{AttackKind, FaultSpec, Workload};
use std::fmt::Write as _;
use std::path::PathBuf;

/// All experiment names accepted by [`run_experiment`].
pub const EXPERIMENTS: [&str; 33] = [
    "table1",
    "table2",
    "calibrate",
    "fig1",
    "fig2",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "nsp-sdp",
    "cache-vs-table",
    "ablate-counter",
    "ablate-init",
    "ablate-split",
    "ablate-recovery",
    "ablate-adaptive",
    "ablate-assoc",
    "ablate-victim",
    "ablate-degree",
    "ablate-banks",
    "ablate-hybrid",
    "ablate-mix",
    "filter-family",
    "attack-matrix",
];

/// Options for one experiment invocation beyond the instruction budget.
#[derive(Debug, Clone)]
pub struct ExperimentOptions {
    /// Workload seeds to average over (counters are summed per cell, so
    /// rates become instruction-weighted averages). Minimum 1.
    pub seeds: u32,
    /// Dump raw reports of completed cells to `<json_dir>/<name>.json`.
    pub json_dir: Option<String>,
    /// Checkpoint/resume directory: completed cells are persisted under
    /// `<dir>/<experiment>/` and reloaded on the next invocation.
    pub checkpoint: Option<PathBuf>,
    /// Interval-telemetry directory: every cell streams its per-interval
    /// records to `<dir>/<experiment>/<cell>.jsonl` (default sampling
    /// interval; telemetry stays off when `None`).
    pub telemetry: Option<PathBuf>,
    /// Fault drill: inject a panic at this instruction into the first cell
    /// of every grid (CI and tests only — exercises the partial-results
    /// path end to end through the binary).
    pub inject_fault: Option<u64>,
    /// Sharded-sweep mode: run only the cells owned by this shard and emit
    /// an [`ExperimentFragment`] (requires `json_dir`) instead of a full
    /// [`ExperimentDoc`].
    pub shard: Option<ShardSpec>,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        ExperimentOptions {
            seeds: 1,
            json_dir: None,
            checkpoint: None,
            telemetry: None,
            inject_fault: None,
            shard: None,
        }
    }
}

/// The result of one experiment invocation.
#[derive(Debug)]
pub struct ExperimentOutput {
    /// Rendered table — the figure's table when every cell completed, or
    /// a partial-results grid plus failure appendix otherwise.
    pub body: String,
    /// Grid cells attempted (after seed fan-out and merge: one per
    /// label×workload cell).
    pub total_cells: usize,
    /// Cells that failed every attempt.
    pub failed_cells: usize,
    /// Raw (cell × seed) runs reloaded from the checkpoint directory.
    pub loaded_cells: usize,
    /// Raw (cell × seed) runs executed this invocation.
    pub executed_cells: usize,
    /// Structured failures of the cells counted in `failed_cells` (the
    /// machine-readable form of the text appendix).
    pub failures: Vec<CellFailure>,
    /// Sharded mode only: this experiment's coverage record, for the
    /// caller to accumulate into the shard's `MANIFEST.json`. `None` when
    /// unsharded or when the experiment has no grid (`table1`).
    pub manifest: Option<ManifestExperiment>,
}

impl ExperimentOutput {
    /// Did every cell complete?
    pub fn is_complete(&self) -> bool {
        self.failed_cells == 0
    }
}

/// Run one named experiment; returns its rendered table. With `json_dir`
/// set, raw reports are also dumped to `<json_dir>/<name>.json`.
pub fn run_experiment(name: &str, insts: u64, json_dir: Option<&str>) -> Result<String, String> {
    run_experiment_seeds(name, insts, json_dir, 1)
}

/// [`run_experiment`] averaged over `seeds` workload seeds (counters are
/// summed per cell, so rates become instruction-weighted averages).
pub fn run_experiment_seeds(
    name: &str,
    insts: u64,
    json_dir: Option<&str>,
    seeds: u32,
) -> Result<String, String> {
    let opts = ExperimentOptions {
        seeds,
        json_dir: json_dir.map(str::to_string),
        ..ExperimentOptions::default()
    };
    run_experiment_full(name, insts, &opts)
        .map(|out| out.body)
        .map_err(|e| e.to_string())
}

/// The full-fat entry point: seeds, JSON dump, checkpoint/resume, and a
/// structured [`ExperimentOutput`] whose cell counts the caller can turn
/// into a partial-failure exit code.
pub fn run_experiment_full(
    name: &str,
    insts: u64,
    opts: &ExperimentOptions,
) -> Result<ExperimentOutput, PpfError> {
    CTX.with(|c| {
        *c.borrow_mut() = RunContext {
            seeds: opts.seeds.max(1),
            checkpoint: opts.checkpoint.clone(),
            telemetry: opts.telemetry.clone(),
            inject_fault: opts.inject_fault,
            shard: opts.shard,
            counts: CellCounts::default(),
            fragment: None,
        }
    });
    let dispatched: Result<(String, Vec<SimReport>, String), PpfError> = match name {
        "table1" => {
            // Static table: no grid, no cells, nothing to checkpoint and
            // nothing to shard (every shard prints it; none claims it).
            return Ok(ExperimentOutput {
                body: table1(),
                total_cells: 0,
                failed_cells: 0,
                loaded_cells: 0,
                executed_cells: 0,
                failures: Vec::new(),
                manifest: None,
            });
        }
        "table2" => run_and(name, experiments::table2(insts), table2),
        "calibrate" => run_and(name, experiments::calibration(insts), calibrate),
        "fig1" => run_and(name, experiments::fig1_2(insts), fig1),
        "fig2" => run_and(name, experiments::fig1_2(insts), fig2),
        "fig4" => run_and(name, experiments::fig4_5_6(insts), |r| fig4_style(r, "8KB")),
        "fig5" => run_and(name, experiments::fig4_5_6(insts), |r| fig5_style(r, "8KB")),
        "fig6" => run_and(name, experiments::fig4_5_6(insts), |r| fig6_style(r, "8KB")),
        "fig7" => run_and(name, experiments::fig7_8_9(insts), |r| {
            fig4_style(r, "32KB")
        }),
        "fig8" => run_and(name, experiments::fig7_8_9(insts), |r| {
            fig5_style(r, "32KB")
        }),
        "fig9" => run_and(name, experiments::fig7_8_9(insts), |r| {
            fig6_style(r, "32KB")
        }),
        "fig10" => run_and(name, experiments::fig10_11_12(insts), fig10),
        "fig11" => run_and(name, experiments::fig10_11_12(insts), fig11),
        "fig12" => run_and(name, experiments::fig10_11_12(insts), fig12),
        "fig13" => run_and(name, experiments::fig13_14(insts), fig13),
        "fig14" => run_and(name, experiments::fig13_14(insts), fig14),
        "fig15" => run_and(name, experiments::fig15_16(insts), fig15),
        "fig16" => run_and(name, experiments::fig15_16(insts), fig16),
        "nsp-sdp" => run_and(name, experiments::nsp_sdp_solo(insts), nsp_sdp),
        "cache-vs-table" => run_and(name, experiments::cache_vs_table(insts), cache_vs_table),
        "ablate-counter" => run_and(name, experiments::ablations::counter_width(insts), |r| {
            ablation_summary(r, "Ablation: saturating-counter width (PA filter)")
        }),
        "ablate-init" => run_and(name, experiments::ablations::counter_init(insts), |r| {
            ablation_summary(
                r,
                "Ablation: counter initialization (assumed-good vs alternatives)",
            )
        }),
        "ablate-split" => run_and(name, experiments::ablations::split_tables(insts), |r| {
            ablation_summary(r, "Ablation: shared vs per-source history tables")
        }),
        "ablate-recovery" => run_and(name, experiments::ablations::recovery(insts), |r| {
            ablation_summary(
                r,
                "Ablation: misprediction recovery vs strict (absorbing) filter",
            )
        }),
        "ablate-adaptive" => run_and(name, experiments::ablations::adaptive(insts), |r| {
            ablation_summary(
                r,
                "Ablation: adaptive filter engagement (section 5.2.1 remark)",
            )
        }),
        "ablate-assoc" => run_and(name, experiments::ablations::associativity(insts), |r| {
            ablation_summary(r, "Ablation: L1 associativity (no filter)")
        }),
        "ablate-victim" => run_and(name, experiments::ablations::victim_cache(insts), |r| {
            ablation_summary(r, "Ablation: victim cache vs pollution filter")
        }),
        "ablate-degree" => run_and(name, experiments::ablations::nsp_degree(insts), |r| {
            ablation_summary(r, "Ablation: NSP aggressiveness (prefetch degree)")
        }),
        "ablate-banks" => run_and(name, experiments::ablations::dram_banks(insts), |r| {
            ablation_summary(r, "Ablation: DRAM banking (memory-level-parallelism limit)")
        }),
        "ablate-hybrid" => run_and(name, experiments::ablations::hybrid(insts), |r| {
            ablation_summary(
                r,
                "Ablation: PA vs PC vs tournament hybrid (same counter budget)",
            )
        }),
        "ablate-mix" => run_and(name, experiments::ablations::prefetcher_mix(insts), |r| {
            ablation_summary(
                r,
                "Ablation: prefetcher mix (stride RPT, Markov correlation)",
            )
        }),
        "filter-family" => run_and(name, experiments::filter_family(insts), filter_family),
        "attack-matrix" => run_and(name, experiments::attack_matrix(insts), attack_matrix),
        other => Err(PpfError::config_invalid(format!(
            "unknown experiment '{other}'"
        ))),
    };
    let (title, reports, body) = dispatched?;
    let counts = CTX.with(|c| c.borrow().counts.clone());
    let fragment = CTX.with(|c| c.borrow_mut().fragment.take());
    let mut manifest = None;
    if let Some(dir) = &opts.json_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| PpfError::io(e.to_string()).context(format!("creating json dir {dir}")))?;
        if let Some((frag, man)) = fragment {
            // Sharded mode: this invocation owns only part of the grid, so
            // it writes a self-describing fragment for `figures merge`
            // instead of posing as the full experiment document.
            let path = format!("{dir}/{title}.fragment.json");
            let json = ppf_types::ToJson::to_json_pretty(&frag);
            std::fs::write(&path, json)
                .map_err(|e| PpfError::io(e.to_string()).context(format!("writing {path}")))?;
            manifest = Some(man);
        } else {
            let path = format!("{dir}/{title}.json");
            // One self-describing document per experiment: reports of the
            // surviving cells plus structured failures — so a partial run
            // still dumps machine-parseable JSON instead of a bare array
            // missing rows with no explanation.
            let doc = ExperimentDoc {
                experiment: title.clone(),
                reports,
                failures: counts.failures.clone(),
            };
            let json = ppf_types::ToJson::to_json_pretty(&doc);
            std::fs::write(&path, json)
                .map_err(|e| PpfError::io(e.to_string()).context(format!("writing {path}")))?;
        }
    }
    Ok(ExperimentOutput {
        body,
        total_cells: counts.total,
        failed_cells: counts.failed,
        loaded_cells: counts.loaded,
        executed_cells: counts.executed,
        failures: counts.failures,
        manifest,
    })
}

/// The on-disk JSON document `figures --json` writes per experiment:
/// surviving reports plus the structured failures of any cells that did
/// not complete (empty on a fully green run).
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentDoc {
    /// Experiment name (matches the filename stem).
    pub experiment: String,
    /// Reports of the cells that completed.
    pub reports: Vec<SimReport>,
    /// Structured failures of the cells that did not.
    pub failures: Vec<CellFailure>,
}

json_struct!(ExperimentDoc {
    experiment,
    reports,
    failures,
});

/// Cell accounting accumulated over one `run_experiment_full` invocation.
#[derive(Debug, Clone, Default)]
struct CellCounts {
    total: usize,
    failed: usize,
    loaded: usize,
    executed: usize,
    failures: Vec<CellFailure>,
}

/// Per-invocation context for the current experiment — thread-local
/// plumbing keeps every figure closure's signature flat.
#[derive(Debug)]
struct RunContext {
    seeds: u32,
    checkpoint: Option<PathBuf>,
    telemetry: Option<PathBuf>,
    inject_fault: Option<u64>,
    shard: Option<ShardSpec>,
    counts: CellCounts,
    /// Sharded mode: the fragment + manifest record the grid runner built
    /// for the current experiment, consumed by `run_experiment_full`.
    fragment: Option<(ExperimentFragment, ManifestExperiment)>,
}

thread_local! {
    static CTX: std::cell::RefCell<RunContext> = std::cell::RefCell::new(RunContext {
        seeds: 1,
        checkpoint: None,
        telemetry: None,
        inject_fault: None,
        shard: None,
        counts: CellCounts::default(),
        fragment: None,
    });
}

/// Run a grid and apply a formatter, returning (name, reports, rendered).
/// A grid with failed cells renders as [`partial_results`] instead of the
/// figure-specific table (whose lock-step label groups cannot tolerate
/// holes); the reports vector then carries the surviving cells only.
fn run_and(
    name: &str,
    mut grid: Vec<experiments::RunSpec>,
    format: impl Fn(&[SimReport]) -> String,
) -> Result<(String, Vec<SimReport>, String), PpfError> {
    let (seeds, ckpt, telemetry, inject_fault, shard) = CTX.with(|c| {
        let c = c.borrow();
        (
            c.seeds,
            c.checkpoint.clone(),
            c.telemetry.clone(),
            c.inject_fault,
            c.shard,
        )
    });
    if let Some(base) = &telemetry {
        let dir = base.join(name);
        for spec in &mut grid {
            spec.telemetry = Some(experiments::TelemetrySpec {
                config: TelemetryConfig::every(ppf_types::telemetry::DEFAULT_INTERVAL_CYCLES),
                dir: dir.clone(),
            });
        }
    }
    if let Some(at) = inject_fault {
        if let Some(first) = grid.first_mut() {
            first.fault = Some(FaultSpec::panic_at(at));
        }
    }
    if let Some(shard) = shard {
        return run_shard(name, grid, seeds, ckpt, shard);
    }
    let total = grid.len();
    let (outcomes, loaded, executed) = match ckpt {
        Some(dir) => {
            let run = checkpoint::run_grid_seeds_checkpointed(grid, seeds, &dir.join(name))?;
            for e in &run.write_errors {
                eprintln!("warning: {e}");
            }
            (run.outcomes, run.loaded, run.executed)
        }
        None => {
            let run = memo::run_grid_seeds_memoized(grid, seeds);
            (run.outcomes, run.hits, run.executed)
        }
    };
    let failed = outcomes.iter().filter(|o| !o.is_ok()).count();
    CTX.with(|c| {
        let mut c = c.borrow_mut();
        c.counts.total += total;
        c.counts.failed += failed;
        c.counts.loaded += loaded;
        c.counts.executed += executed;
        c.counts
            .failures
            .extend(outcomes.iter().filter_map(CellOutcome::failure).cloned());
    });
    let reports: Vec<SimReport> = outcomes
        .iter()
        .filter_map(|o| o.report().cloned())
        .collect();
    let body = if failed == 0 {
        format(&reports)
    } else {
        partial_results(name, &outcomes)
    };
    Ok((name.to_string(), reports, body))
}

/// The sharded form of [`run_and`]: run only the cells this shard owns
/// (by content-hash key, so the partition is machine- and order-
/// independent), record a fragment + manifest in the run context, and
/// render a one-line coverage summary instead of the figure table — a
/// shard holds an arbitrary subset of rows, which no figure formatter
/// can typeset.
fn run_shard(
    name: &str,
    grid: Vec<experiments::RunSpec>,
    seeds: u32,
    ckpt: Option<PathBuf>,
    shard: ShardSpec,
) -> Result<(String, Vec<SimReport>, String), PpfError> {
    let full_total = grid.len() as u64;
    let mut indices: Vec<u64> = Vec::new();
    let mut keys: Vec<String> = Vec::new();
    let mut selected: Vec<experiments::RunSpec> = Vec::new();
    for (i, spec) in grid.into_iter().enumerate() {
        let key = checkpoint::cell_key(&spec);
        if shard.contains(&key) {
            indices.push(i as u64);
            keys.push(key);
            selected.push(spec);
        }
    }
    let owned = selected.len();
    let (outcomes, loaded, executed) = match ckpt {
        Some(dir) => {
            let run = checkpoint::run_grid_seeds_checkpointed(selected, seeds, &dir.join(name))?;
            for e in &run.write_errors {
                eprintln!("warning: {e}");
            }
            (run.outcomes, run.loaded, run.executed)
        }
        None => {
            let run = memo::run_grid_seeds_memoized(selected, seeds);
            (run.outcomes, run.hits, run.executed)
        }
    };
    let failed = outcomes.iter().filter(|o| !o.is_ok()).count();
    CTX.with(|c| {
        let mut c = c.borrow_mut();
        c.counts.total += owned;
        c.counts.failed += failed;
        c.counts.loaded += loaded;
        c.counts.executed += executed;
        c.counts
            .failures
            .extend(outcomes.iter().filter_map(CellOutcome::failure).cloned());
    });
    let entries: Vec<FragmentEntry> = indices
        .iter()
        .zip(&keys)
        .zip(&outcomes)
        .map(|((&index, key), o)| FragmentEntry {
            index,
            key: key.clone(),
            report: o.report().cloned(),
            failure: o.failure().cloned(),
        })
        .collect();
    let fragment = ExperimentFragment {
        schema_version: SHARD_SCHEMA_VERSION,
        experiment: name.to_string(),
        shard_index: shard.index,
        shard_count: shard.count,
        total_cells: full_total,
        entries,
    };
    let manifest = ManifestExperiment {
        experiment: name.to_string(),
        total_cells: full_total,
        indices,
        keys,
    };
    CTX.with(|c| c.borrow_mut().fragment = Some((fragment, manifest)));
    let reports: Vec<SimReport> = outcomes
        .iter()
        .filter_map(|o| o.report().cloned())
        .collect();
    let body = header(&format!(
        "{name}: shard {shard} — ran {owned}/{full_total} cells, {failed} failed"
    ));
    Ok((name.to_string(), reports, body))
}

/// Rendering for a grid with failed cells. The figure formatters walk
/// per-label report groups in lock-step by workload index and cannot
/// tolerate holes, so a partial run falls back to a generic per-cell IPC
/// grid — failed cells shown as `—` — plus an appendix with each failed
/// cell's structured error.
fn partial_results(name: &str, outcomes: &[CellOutcome]) -> String {
    let failed = outcomes.iter().filter(|o| !o.is_ok()).count();
    let mut out = header(&format!(
        "{name}: partial results — {failed}/{} cells failed",
        outcomes.len()
    ));
    let mut t = TextTable::new(vec!["config", "benchmark", "IPC", "status"]);
    for o in outcomes {
        match o {
            CellOutcome::Ok(r) => t.row(vec![
                r.label.clone(),
                r.workload.clone(),
                f3(r.ipc()),
                "ok".to_string(),
            ]),
            CellOutcome::Failed(f) => t.row(vec![
                f.label.clone(),
                f.workload.clone(),
                "—".to_string(),
                f.error.kind.label().to_string(),
            ]),
        }
    }
    out.push_str(&t.render());
    out
}

/// The human-readable appendix for failed cells. Kept out of the rendered
/// body (which goes to stdout) so `figures --json`-style machine consumers
/// can parse stdout while the diagnostics land on stderr.
pub fn failure_appendix(failures: &[CellFailure]) -> String {
    let mut out = String::from("failed cells:\n");
    for f in failures {
        // Under-attack cells name the attacking tenant, so an operator
        // triaging a partial adversarial sweep knows who was hammering
        // the machine when the cell died.
        let tenant = f
            .attacking_tenant
            .map(|t| format!(" [under attack by tenant {t}]"))
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "  {}/{} seed {} ({} attempts){tenant}: {}",
            f.label, f.workload, f.seed, f.attempts, f.error
        );
    }
    out
}

/// Reports for one experiment label, in workload order.
fn with_label<'a>(reports: &'a [SimReport], label: &str) -> Vec<&'a SimReport> {
    reports.iter().filter(|r| r.label == label).collect()
}

fn header(title: &str) -> String {
    format!("== {title} ==\n")
}

/// Table 1: the system configuration (static; printed for completeness).
pub fn table1() -> String {
    let cfg = ppf_types::SystemConfig::paper_default();
    let mut out = header("Table 1: system configuration");
    let mut t = TextTable::new(vec!["parameter", "value"]);
    t.row(vec![
        "issue/retire".to_string(),
        format!("{} inst/cycle", cfg.core.issue_width),
    ]);
    t.row(vec![
        "reorder buffer".to_string(),
        format!("{} entries", cfg.core.rob_entries),
    ]);
    t.row(vec![
        "load/store queue".to_string(),
        format!("{} entries", cfg.core.lsq_entries),
    ]);
    t.row(vec![
        "branch predictor".to_string(),
        format!("bimodal, {} entries", cfg.core.branch.bimodal_entries),
    ]);
    t.row(vec![
        "BTB".to_string(),
        format!(
            "{}-way, {} sets",
            cfg.core.branch.btb_ways, cfg.core.branch.btb_sets
        ),
    ]);
    t.row(vec![
        "L1 D".to_string(),
        format!(
            "{}KB, {}B line, {}-way, {} cycle, {} ports",
            cfg.l1.size_bytes / 1024,
            cfg.l1.line_bytes,
            cfg.l1.ways,
            cfg.l1.hit_latency,
            cfg.l1.ports
        ),
    ]);
    t.row(vec![
        "L2".to_string(),
        format!(
            "{}KB, {}B line, {}-way, {} cycles, {} port",
            cfg.l2.size_bytes / 1024,
            cfg.l2.line_bytes,
            cfg.l2.ways,
            cfg.l2.hit_latency,
            cfg.l2.ports
        ),
    ]);
    t.row(vec![
        "memory latency".to_string(),
        format!("{} cycles", cfg.mem.latency),
    ]);
    t.row(vec![
        "bus".to_string(),
        format!("{}-byte wide", cfg.mem.bus_bytes),
    ]);
    t.row(vec![
        "prefetch queue".to_string(),
        format!("{} entries", cfg.prefetch.queue_len),
    ]);
    t.row(vec![
        "history table".to_string(),
        format!(
            "{} entries ({}B)",
            cfg.filter.table_entries,
            cfg.filter.table_entries * cfg.filter.counter_bits as usize / 8
        ),
    ]);
    out.push_str(&t.render());
    out
}

/// Table 2: measured vs paper miss rates, prefetch off.
pub fn table2(reports: &[SimReport]) -> String {
    let mut out = header("Table 2: benchmark properties (prefetch off)");
    let mut t = TextTable::new(vec![
        "benchmark",
        "L1 miss%",
        "paper L1",
        "L2 miss%",
        "paper L2",
    ]);
    for r in reports {
        let w = Workload::from_name(&r.workload).expect("known workload");
        let spec = w.spec();
        t.row(vec![
            r.workload.clone(),
            pct(r.stats.l1.miss_rate()),
            pct(spec.expect_l1_miss),
            pct(r.stats.l2.miss_rate()),
            pct(spec.expect_l2_miss),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// `figures calibrate` tolerances — the same bands `tests/calibration.rs`
/// enforces: a workload is "ok" when its measured miss rate is within the
/// relative band of the Table 2 target *or* within the absolute band.
const CAL_L1_REL: f64 = 0.25;
const CAL_L1_ABS: f64 = 0.015;
const CAL_L2_REL: f64 = 0.35;
const CAL_L2_ABS: f64 = 0.03;

fn within_band(measured: f64, target: f64, rel: f64, abs: f64) -> bool {
    (measured - target).abs() <= target * rel || (measured - target).abs() <= abs
}

/// Drift cell: signed percentage-point delta, flagged when outside both the
/// relative and absolute tolerance bands.
fn drift_cell(measured: f64, target: f64, rel: f64, abs: f64) -> String {
    let mark = if within_band(measured, target, rel, abs) {
        ""
    } else {
        " !"
    };
    format!("{:+.2}pt{mark}", 100.0 * (measured - target))
}

/// Percentage shares of one level's 3C miss breakdown ("cm/cp/cf %").
fn class_cell(mc: &ppf_types::MissClass) -> String {
    if mc.total() == 0 {
        return "-".to_string();
    }
    format!(
        "{:.0}/{:.0}/{:.0}",
        100.0 * mc.compulsory_frac(),
        100.0 * mc.capacity_frac(),
        100.0 * mc.conflict_frac()
    )
}

/// `figures calibrate`: per-workload drift against the Table 2 targets with
/// the shadow-tag compulsory/capacity/conflict breakdown. Rows flagged `!`
/// fall outside the calibration-test tolerance for that level.
pub fn calibrate(reports: &[SimReport]) -> String {
    let mut out = header("Calibration: measured vs Table 2 targets (prefetch off)");
    let mut t = TextTable::new(vec![
        "benchmark",
        "L1 miss%",
        "paper L1",
        "L1 drift",
        "L2 miss%",
        "paper L2",
        "L2 drift",
        "L1 3C%",
        "L2 3C%",
    ]);
    let mut ok = 0usize;
    for r in reports {
        let w = Workload::from_name(&r.workload).expect("known workload");
        let spec = w.spec();
        let l1 = r.stats.l1.miss_rate();
        let l2 = r.stats.l2.miss_rate();
        if within_band(l1, spec.expect_l1_miss, CAL_L1_REL, CAL_L1_ABS)
            && within_band(l2, spec.expect_l2_miss, CAL_L2_REL, CAL_L2_ABS)
        {
            ok += 1;
        }
        t.row(vec![
            r.workload.clone(),
            pct(l1),
            pct(spec.expect_l1_miss),
            drift_cell(l1, spec.expect_l1_miss, CAL_L1_REL, CAL_L1_ABS),
            pct(l2),
            pct(spec.expect_l2_miss),
            drift_cell(l2, spec.expect_l2_miss, CAL_L2_REL, CAL_L2_ABS),
            class_cell(&r.stats.l1.miss_class),
            class_cell(&r.stats.l2.miss_class),
        ]);
    }
    let total = t.len();
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "{ok}/{total} workloads within the calibration tolerance \
         (L1: {}% rel or {}pt; L2: {}% rel or {}pt)",
        100.0 * CAL_L1_REL,
        100.0 * CAL_L1_ABS,
        100.0 * CAL_L2_REL,
        100.0 * CAL_L2_ABS
    );
    let _ = writeln!(
        out,
        "3C% columns: compulsory/capacity/conflict shares of demand misses \
         (shadow infinite-tag + fully-associative tag)"
    );
    out
}

/// Figure 1: good/bad prefetch distribution, no filtering.
pub fn fig1(reports: &[SimReport]) -> String {
    let mut out = header("Figure 1: effectiveness of prefetches (no filter)");
    let mut t = TextTable::new(vec!["benchmark", "good%", "bad%", "good", "bad"]);
    let mut bad_fracs = Vec::new();
    for r in reports {
        let good = r.stats.good_total();
        let bad = r.stats.bad_total();
        let total = (good + bad).max(1);
        bad_fracs.push(bad as f64 / total as f64);
        t.row(vec![
            r.workload.clone(),
            pct(good as f64 / total as f64),
            pct(bad as f64 / total as f64),
            good.to_string(),
            bad.to_string(),
        ]);
    }
    t.row(vec![
        "mean".to_string(),
        pct(1.0 - mean(&bad_fracs)),
        pct(mean(&bad_fracs)),
        String::new(),
        String::new(),
    ]);
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "(paper: on average 48% of prefetches are never referenced)"
    );
    out
}

/// Figure 2: L1 traffic split between demand and prefetch accesses.
/// "Probes" counts every prefetch offered to the L1 (including those
/// squashed as duplicates after the tag check — they still occupied the
/// tag array); "fills" counts prefetches that actually allocated a line.
pub fn fig2(reports: &[SimReport]) -> String {
    let mut out = header("Figure 2: traffic distribution of L1 cache");
    let mut t = TextTable::new(vec![
        "benchmark",
        "demand",
        "pf probes",
        "pf fills",
        "probes/demand",
        "fills/demand",
    ]);
    let mut probe_ratios = Vec::new();
    let mut fill_ratios = Vec::new();
    for r in reports {
        let demand = r.stats.l1.demand_accesses.max(1) as f64;
        let probes = r.stats.prefetches_proposed.total();
        let fills = r.stats.prefetches_issued.total();
        probe_ratios.push(probes as f64 / demand);
        fill_ratios.push(fills as f64 / demand);
        t.row(vec![
            r.workload.clone(),
            r.stats.l1.demand_accesses.to_string(),
            probes.to_string(),
            fills.to_string(),
            f3(probes as f64 / demand),
            f3(fills as f64 / demand),
        ]);
    }
    t.row(vec![
        "mean".to_string(),
        String::new(),
        String::new(),
        String::new(),
        f3(mean(&probe_ratios)),
        f3(mean(&fill_ratios)),
    ]);
    out.push_str(&t.render());
    let _ = writeln!(out, "(paper: mean ratio 0.41, max 0.57, min 0.29)");
    out
}

const FILTER_LABELS: [&str; 3] = ["no-filter", "PA", "PC"];

/// Figures 4/7: bad and good prefetch counts for none/PA/PC, normalized to
/// the good count without filtering.
pub fn fig4_style(reports: &[SimReport], cache: &str) -> String {
    let mut out = header(&format!(
        "Figure {}: prefetch counts, none/PA/PC ({cache} L1), normalized to good@no-filter",
        if cache == "8KB" { "4" } else { "7" }
    ));
    let mut t = TextTable::new(vec![
        "benchmark",
        "bad:none",
        "bad:PA",
        "bad:PC",
        "good:none",
        "good:PA",
        "good:PC",
    ]);
    let grouped: Vec<Vec<&SimReport>> = FILTER_LABELS
        .iter()
        .map(|l| with_label(reports, l))
        .collect();
    let mut bad_red_pa = Vec::new();
    let mut bad_red_pc = Vec::new();
    let mut good_red_pa = Vec::new();
    let mut good_red_pc = Vec::new();
    for i in 0..grouped[0].len() {
        let base_good = grouped[0][i].stats.good_total().max(1) as f64;
        let cells: Vec<f64> = (0..3)
            .flat_map(|f| {
                [
                    grouped[f][i].stats.bad_total() as f64 / base_good,
                    grouped[f][i].stats.good_total() as f64 / base_good,
                ]
            })
            .collect();
        // cells = [bad_none, good_none, bad_pa, good_pa, bad_pc, good_pc]
        if cells[0] > 0.0 {
            bad_red_pa.push(1.0 - cells[2] / cells[0]);
            bad_red_pc.push(1.0 - cells[4] / cells[0]);
        }
        good_red_pa.push(1.0 - cells[3] / cells[1]);
        good_red_pc.push(1.0 - cells[5] / cells[1]);
        t.row(vec![
            grouped[0][i].workload.clone(),
            f3(cells[0]),
            f3(cells[2]),
            f3(cells[4]),
            f3(cells[1]),
            f3(cells[3]),
            f3(cells[5]),
        ]);
    }
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "bad-prefetch reduction: PA {} / PC {}   good-prefetch loss: PA {} / PC {}",
        pct(mean(&bad_red_pa)),
        pct(mean(&bad_red_pc)),
        pct(mean(&good_red_pa)),
        pct(mean(&good_red_pc)),
    );
    let paper = if cache == "8KB" {
        "(paper @8KB: bad reduced 97%/98%; good lost 51%/48%)"
    } else {
        "(paper @32KB: bad reduced 91%/92%; good lost 35%/27%)"
    };
    let _ = writeln!(out, "{paper}");
    out
}

/// Figures 5/8: bad/good prefetch ratio for none/PA/PC.
pub fn fig5_style(reports: &[SimReport], cache: &str) -> String {
    let mut out = header(&format!(
        "Figure {}: bad/good prefetch ratios ({cache} L1)",
        if cache == "8KB" { "5" } else { "8" }
    ));
    let mut t = TextTable::new(vec!["benchmark", "none", "PA", "PC"]);
    let grouped: Vec<Vec<&SimReport>> = FILTER_LABELS
        .iter()
        .map(|l| with_label(reports, l))
        .collect();
    let mut red_pa = Vec::new();
    let mut red_pc = Vec::new();
    for i in 0..grouped[0].len() {
        let ratios: Vec<f64> = (0..3)
            .map(|f| grouped[f][i].stats.bad_good_ratio())
            .collect();
        if ratios[0] > 0.0 && ratios[0].is_finite() {
            if ratios[1].is_finite() {
                red_pa.push((1.0 - ratios[1] / ratios[0]).max(-5.0));
            }
            if ratios[2].is_finite() {
                red_pc.push((1.0 - ratios[2] / ratios[0]).max(-5.0));
            }
        }
        t.row(vec![
            grouped[0][i].workload.clone(),
            f3(ratios[0]),
            f3(ratios[1]),
            f3(ratios[2]),
        ]);
    }
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "mean ratio reduction: PA {} / PC {}",
        pct(mean(&red_pa)),
        pct(mean(&red_pc))
    );
    let paper = if cache == "8KB" {
        "(paper @8KB: reduced 70% PA / 91% PC)"
    } else {
        "(paper @32KB: reduced 75% PA / 93% PC)"
    };
    let _ = writeln!(out, "{paper}");
    out
}

/// Figures 6/9: IPC for none/PA/PC.
pub fn fig6_style(reports: &[SimReport], cache: &str) -> String {
    let mut out = header(&format!(
        "Figure {}: IPC comparison ({cache} L1)",
        if cache == "8KB" { "6" } else { "9" }
    ));
    let mut t = TextTable::new(vec!["benchmark", "none", "PA", "PC", "PA gain", "PC gain"]);
    let grouped: Vec<Vec<&SimReport>> = FILTER_LABELS
        .iter()
        .map(|l| with_label(reports, l))
        .collect();
    let mut gain_pa = Vec::new();
    let mut gain_pc = Vec::new();
    for i in 0..grouped[0].len() {
        let ipc: Vec<f64> = (0..3).map(|f| grouped[f][i].ipc()).collect();
        gain_pa.push(ipc[1] / ipc[0]);
        gain_pc.push(ipc[2] / ipc[0]);
        t.row(vec![
            grouped[0][i].workload.clone(),
            f3(ipc[0]),
            f3(ipc[1]),
            f3(ipc[2]),
            pct(ipc[1] / ipc[0] - 1.0),
            pct(ipc[2] / ipc[0] - 1.0),
        ]);
    }
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "mean IPC gain: PA {} / PC {}",
        pct(geomean(&gain_pa) - 1.0),
        pct(geomean(&gain_pc) - 1.0)
    );
    let paper = if cache == "8KB" {
        "(paper @8KB: +8.2% PA / +9.1% PC)"
    } else {
        "(paper @32KB: +7.0% PA / +8.1% PC)"
    };
    let _ = writeln!(out, "{paper}");
    out
}

fn size_labels() -> Vec<String> {
    TABLE_SIZES.iter().map(|s| format!("{s}-entry")).collect()
}

/// Figure 10: good prefetches vs history-table size (normalized to 4K).
pub fn fig10(reports: &[SimReport]) -> String {
    table_sweep(
        reports,
        "Figure 10: good prefetches vs table size (PA, normalized to 4K entries)",
        |r| r.stats.good_total() as f64,
    )
}

/// Figure 11: bad prefetches vs history-table size (normalized to 4K).
pub fn fig11(reports: &[SimReport]) -> String {
    table_sweep(
        reports,
        "Figure 11: bad prefetches vs table size (PA, normalized to 4K entries)",
        |r| r.stats.bad_total() as f64,
    )
}

fn table_sweep(reports: &[SimReport], title: &str, metric: impl Fn(&SimReport) -> f64) -> String {
    let mut out = header(title);
    let labels = size_labels();
    let mut cols = vec!["benchmark".to_string()];
    cols.extend(labels.clone());
    let mut t = TextTable::new(cols);
    let grouped: Vec<Vec<&SimReport>> = labels.iter().map(|l| with_label(reports, l)).collect();
    let norm_idx = TABLE_SIZES
        .iter()
        .position(|&s| s == 4096)
        .expect("4K in sweep");
    for i in 0..grouped[0].len() {
        let base = metric(grouped[norm_idx][i]).max(1.0);
        let mut row = vec![grouped[0][i].workload.clone()];
        for g in &grouped {
            row.push(f3(metric(g[i]) / base));
        }
        t.row(row);
    }
    out.push_str(&t.render());
    out
}

/// Figure 12: IPC vs history-table size.
pub fn fig12(reports: &[SimReport]) -> String {
    let mut out = header("Figure 12: IPC for different history table sizes (PA)");
    let labels = size_labels();
    let mut cols = vec!["benchmark".to_string()];
    cols.extend(labels.clone());
    let mut t = TextTable::new(cols);
    let grouped: Vec<Vec<&SimReport>> = labels.iter().map(|l| with_label(reports, l)).collect();
    let mut means: Vec<Vec<f64>> = vec![Vec::new(); labels.len()];
    for i in 0..grouped[0].len() {
        let mut row = vec![grouped[0][i].workload.clone()];
        for (j, g) in grouped.iter().enumerate() {
            row.push(f3(g[i].ipc()));
            means[j].push(g[i].ipc());
        }
        t.row(row);
    }
    let mut mean_row = vec!["geomean".to_string()];
    for m in &means {
        mean_row.push(f3(geomean(m)));
    }
    t.row(mean_row);
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "(paper: ~6% gain from 2048 to 4096 entries, <1% beyond)"
    );
    out
}

fn port_labels() -> Vec<String> {
    PORT_COUNTS.iter().map(|p| format!("{p}-port")).collect()
}

/// Figure 13: bad/good ratio vs L1 port count (PA filter).
pub fn fig13(reports: &[SimReport]) -> String {
    let mut out = header("Figure 13: bad/good prefetch ratios vs number of L1 ports (PA)");
    let labels = port_labels();
    let mut cols = vec!["benchmark".to_string()];
    cols.extend(labels.clone());
    let mut t = TextTable::new(cols);
    let grouped: Vec<Vec<&SimReport>> = labels.iter().map(|l| with_label(reports, l)).collect();
    let mut per_port_means: Vec<Vec<f64>> = vec![Vec::new(); labels.len()];
    for i in 0..grouped[0].len() {
        let mut row = vec![grouped[0][i].workload.clone()];
        for (j, g) in grouped.iter().enumerate() {
            let ratio = g[i].stats.bad_good_ratio();
            row.push(f3(ratio));
            if ratio.is_finite() {
                per_port_means[j].push(ratio);
            }
        }
        t.row(row);
    }
    let mut mean_row = vec!["mean".to_string()];
    for m in &per_port_means {
        mean_row.push(f3(mean(m)));
    }
    t.row(mean_row);
    out.push_str(&t.render());
    let _ = writeln!(out, "(paper: ratio drops ~6% 3->4 ports, ~2% 4->5)");
    out
}

/// Figure 14: IPC vs L1 port count (PA filter).
pub fn fig14(reports: &[SimReport]) -> String {
    let mut out = header("Figure 14: IPC vs number of L1 ports (PA)");
    let labels = port_labels();
    let mut cols = vec!["benchmark".to_string()];
    cols.extend(labels.clone());
    let mut t = TextTable::new(cols);
    let grouped: Vec<Vec<&SimReport>> = labels.iter().map(|l| with_label(reports, l)).collect();
    let mut means: Vec<Vec<f64>> = vec![Vec::new(); labels.len()];
    for i in 0..grouped[0].len() {
        let mut row = vec![grouped[0][i].workload.clone()];
        for (j, g) in grouped.iter().enumerate() {
            row.push(f3(g[i].ipc()));
            means[j].push(g[i].ipc());
        }
        t.row(row);
    }
    let mut mean_row = vec!["geomean".to_string()];
    for m in &means {
        mean_row.push(f3(geomean(m)));
    }
    t.row(mean_row);
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "(paper: +4% IPC 3->4 ports, <1% 4->5; latency grows with ports)"
    );
    out
}

const BUFFER_LABELS: [&str; 4] = ["PA", "PA+buffer", "PC", "PC+buffer"];

/// Figure 15: bad/good ratio with and without the dedicated prefetch buffer.
pub fn fig15(reports: &[SimReport]) -> String {
    let mut out = header("Figure 15: bad/good prefetch ratios with prefetch buffer");
    let mut cols = vec!["benchmark".to_string()];
    cols.extend(BUFFER_LABELS.iter().map(|s| s.to_string()));
    let mut t = TextTable::new(cols);
    let grouped: Vec<Vec<&SimReport>> = BUFFER_LABELS
        .iter()
        .map(|l| with_label(reports, l))
        .collect();
    for i in 0..grouped[0].len() {
        let mut row = vec![grouped[0][i].workload.clone()];
        for g in &grouped {
            row.push(f3(g[i].stats.bad_good_ratio()));
        }
        t.row(row);
    }
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "(paper: the dedicated buffer degrades the filters' effectiveness)"
    );
    out
}

/// Figure 16: IPC with and without the dedicated prefetch buffer.
pub fn fig16(reports: &[SimReport]) -> String {
    let mut out = header("Figure 16: IPC comparison with prefetch buffer");
    let mut cols = vec!["benchmark".to_string()];
    cols.extend(BUFFER_LABELS.iter().map(|s| s.to_string()));
    let mut t = TextTable::new(cols);
    let grouped: Vec<Vec<&SimReport>> = BUFFER_LABELS
        .iter()
        .map(|l| with_label(reports, l))
        .collect();
    let mut pa_loss = Vec::new();
    let mut pc_loss = Vec::new();
    for i in 0..grouped[0].len() {
        let mut row = vec![grouped[0][i].workload.clone()];
        let ipcs: Vec<f64> = grouped.iter().map(|g| g[i].ipc()).collect();
        pa_loss.push(ipcs[1] / ipcs[0]);
        pc_loss.push(ipcs[3] / ipcs[2]);
        for v in &ipcs {
            row.push(f3(*v));
        }
        t.row(row);
    }
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "IPC change from adding the buffer: PA {} / PC {}",
        pct(geomean(&pa_loss) - 1.0),
        pct(geomean(&pc_loss) - 1.0)
    );
    let _ = writeln!(out, "(paper: buffer costs 9% IPC under PA, 10% under PC)");
    out
}

const SOLO_LABELS: [&str; 4] = ["NSP/no-filter", "NSP/PA", "SDP/no-filter", "SDP/PA"];

/// §5.2.1: NSP-only and SDP-only machines, with and without the PA filter.
pub fn nsp_sdp(reports: &[SimReport]) -> String {
    let mut out = header("Section 5.2.1: per-prefetcher analysis (hardware prefetcher alone)");
    let mut t = TextTable::new(vec![
        "config",
        "good/bad",
        "bad reduction",
        "good loss",
        "geomean IPC",
    ]);
    let grouped: Vec<Vec<&SimReport>> =
        SOLO_LABELS.iter().map(|l| with_label(reports, l)).collect();
    for pair in [(0usize, 1usize), (2, 3)] {
        let (base, filt) = pair;
        let mut gb_ratios = Vec::new();
        let mut bad_red = Vec::new();
        let mut good_loss = Vec::new();
        let mut ipcs_base = Vec::new();
        let mut ipcs_filt = Vec::new();
        for i in 0..grouped[base].len() {
            let b = &grouped[base][i].stats;
            let f = &grouped[filt][i].stats;
            if b.bad_total() > 0 {
                gb_ratios.push(b.good_total() as f64 / b.bad_total() as f64);
                bad_red.push(1.0 - f.bad_total() as f64 / b.bad_total() as f64);
            }
            if b.good_total() > 0 {
                good_loss.push(1.0 - f.good_total() as f64 / b.good_total() as f64);
            }
            ipcs_base.push(grouped[base][i].ipc());
            ipcs_filt.push(grouped[filt][i].ipc());
        }
        t.row(vec![
            SOLO_LABELS[base].to_string(),
            f3(mean(&gb_ratios)),
            "-".to_string(),
            "-".to_string(),
            f3(geomean(&ipcs_base)),
        ]);
        t.row(vec![
            SOLO_LABELS[filt].to_string(),
            "-".to_string(),
            pct(mean(&bad_red)),
            pct(mean(&good_loss)),
            f3(geomean(&ipcs_filt)),
        ]);
    }
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "(paper: NSP good/bad 1.8, filter kills 97.5% bad / 48.1% good;\n SDP good/bad 11.7, filter kills 68.3% bad / 61.9% good)"
    );
    out
}

const CVT_LABELS: [&str; 3] = ["8KB/no-filter", "8KB+PA-1KB", "16KB/no-filter"];

/// §5.2.1: is a 1KB history table worth more than more cache?
pub fn cache_vs_table(reports: &[SimReport]) -> String {
    let mut out = header("Section 5.2.1: 1KB history table vs larger cache");
    let mut cols = vec!["benchmark".to_string()];
    cols.extend(CVT_LABELS.iter().map(|s| s.to_string()));
    let mut t = TextTable::new(cols);
    let grouped: Vec<Vec<&SimReport>> = CVT_LABELS.iter().map(|l| with_label(reports, l)).collect();
    let mut means: Vec<Vec<f64>> = vec![Vec::new(); CVT_LABELS.len()];
    for i in 0..grouped[0].len() {
        let mut row = vec![grouped[0][i].workload.clone()];
        for (j, g) in grouped.iter().enumerate() {
            row.push(f3(g[i].ipc()));
            means[j].push(g[i].ipc());
        }
        t.row(row);
    }
    let mut mean_row = vec!["geomean".to_string()];
    for m in &means {
        mean_row.push(f3(geomean(m)));
    }
    t.row(mean_row);
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "(paper: 16KB L1 gains ~20%; adding the 1KB table to 8KB is the\n cheaper alternative per byte)"
    );
    out
}

/// Filter kinds in the family head-to-head, in column order. The first
/// label is the no-filter baseline the IPC deltas compare against.
const FAMILY_LABELS: [&str; 5] = ["no-filter", "PA", "PC", "hybrid", "perceptron"];

/// Prefetch coverage: the fraction of would-be demand misses the
/// prefetcher turned into hits (good prefetches over good prefetches plus
/// the demand misses that still got through).
fn coverage(r: &SimReport) -> f64 {
    let good = r.stats.good_total();
    let misses = r.stats.l1.demand_misses;
    if good + misses == 0 {
        0.0
    } else {
        good as f64 / (good + misses) as f64
    }
}

/// The equal-bit-budget filter family head-to-head (DESIGN.md §15): every
/// filter kind on every workload at the same storage budget. The first
/// table shows per-workload `fraction_good` (the pollution-filtering
/// quality the paper optimizes); the second aggregates each kind's geomean
/// IPC delta against the unfiltered machine, mean coverage, and the bits
/// the design actually spends (history/weight tables via [`FilterCost`]).
pub fn filter_family(reports: &[SimReport]) -> String {
    use ppf_filter::cost::FilterCost;
    use ppf_filter::recovery::DEFAULT_REJECT_LOG;
    use ppf_types::{FilterKind, SystemConfig};

    let mut out = header("Filter family: fraction_good per workload at one storage budget");
    let mut cols = vec!["benchmark".to_string()];
    cols.extend(FAMILY_LABELS.iter().map(|s| s.to_string()));
    let mut t = TextTable::new(cols);
    let grouped: Vec<Vec<&SimReport>> = FAMILY_LABELS
        .iter()
        .map(|l| with_label(reports, l))
        .collect();
    for i in 0..grouped[0].len() {
        let mut row = vec![grouped[0][i].workload.clone()];
        for g in &grouped {
            row.push(f3(fraction_good(g[i])));
        }
        t.row(row);
    }
    out.push_str(&t.render());

    let mut s = TextTable::new(vec![
        "filter",
        "geomean IPC",
        "vs no-filter",
        "mean fraction_good",
        "mean coverage",
        "table bits",
    ]);
    let kinds = [
        FilterKind::None,
        FilterKind::Pa,
        FilterKind::Pc,
        FilterKind::Hybrid,
        FilterKind::Perceptron,
    ];
    let base_ipc = geomean(&grouped[0].iter().map(|r| r.ipc()).collect::<Vec<_>>());
    for (j, label) in FAMILY_LABELS.iter().enumerate() {
        let rows = &grouped[j];
        let g = geomean(&rows.iter().map(|r| r.ipc()).collect::<Vec<_>>());
        let cfg = SystemConfig::paper_default().with_filter(kinds[j]);
        let cost = FilterCost::of(&cfg.filter, &cfg.l1, DEFAULT_REJECT_LOG);
        s.row(vec![
            label.to_string(),
            f3(g),
            if j == 0 {
                "base".to_string()
            } else {
                pct(g / base_ipc - 1.0)
            },
            f3(mean(
                &rows.iter().map(|r| fraction_good(r)).collect::<Vec<_>>(),
            )),
            f3(mean(&rows.iter().map(|r| coverage(r)).collect::<Vec<_>>())),
            cost.history_table_bits.to_string(),
        ]);
    }
    out.push_str(&s.render());
    let _ = writeln!(
        out,
        "all filtering cells share the {}x{}-bit counter budget; the\n \
         perceptron spends it on 5-bit signed feature weights instead",
        SystemConfig::paper_default().filter.table_entries,
        SystemConfig::paper_default().filter.counter_bits,
    );
    out
}

/// Hardening levels in the attack matrix, in the order the summary walks
/// them (mirrors `experiments::HARDENINGS`).
const HARDENING_ORDER: [&str; 4] = ["unhardened", "salted", "partitioned", "hardened"];

/// Filters covered by the attack matrix (`FilterKind::label` spellings).
const ATTACK_FILTERS: [&str; 4] = ["PA", "PC", "hybrid", "perceptron"];

/// Fraction of classified prefetches that were good (1.0 when the cell
/// classified nothing — no pollution observed).
fn fraction_good(r: &SimReport) -> f64 {
    let good = r.stats.good_total();
    let bad = r.stats.bad_total();
    if good + bad == 0 {
        1.0
    } else {
        good as f64 / (good + bad) as f64
    }
}

/// The adversarial attack-vs-hardening matrix (DESIGN.md §12): one row per
/// filter × attack (plus the clean baseline), one column per hardening
/// level, cells showing `fraction_good` over the whole run. The footer
/// compares fully hardened (salt + partitions) against unhardened across
/// every attacked cell.
pub fn attack_matrix(reports: &[SimReport]) -> String {
    let mut out = header("Attack matrix: fraction_good per attack and hardening level");
    let mut cols = vec!["filter".to_string(), "attack".to_string()];
    cols.extend(HARDENING_ORDER.iter().map(|h| h.to_string()));
    let mut t = TextTable::new(cols);
    let find = |label: String| reports.iter().find(|r| r.label == label);
    let mut unhardened = Vec::new();
    let mut hardened = Vec::new();
    let attacks: Vec<String> = std::iter::once("clean".to_string())
        .chain(AttackKind::ALL.iter().map(|a| a.to_string()))
        .collect();
    for filter in ATTACK_FILTERS {
        for attack in &attacks {
            let mut row = vec![filter.to_string(), attack.clone()];
            let mut cells: Vec<Option<f64>> = Vec::new();
            for h in HARDENING_ORDER {
                let fg = find(format!("{filter}/{h}/{attack}")).map(fraction_good);
                row.push(fg.map(f3).unwrap_or_else(|| "—".to_string()));
                cells.push(fg);
            }
            if attack != "clean" {
                if let (Some(u), Some(hd)) = (cells[0], cells[3]) {
                    unhardened.push(u);
                    hardened.push(hd);
                }
            }
            t.row(row);
        }
    }
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "mean under-attack fraction_good: unhardened {} vs hardened (salt+partition) {} ({:+.1}pt)",
        f3(mean(&unhardened)),
        f3(mean(&hardened)),
        100.0 * (mean(&hardened) - mean(&unhardened)),
    );
    let _ = writeln!(
        out,
        "clean rows are the attack-free baseline of each configuration; \
         attacks run from an eighth to the midpoint of the measured window"
    );
    out
}

/// Generic ablation summary: one row per config label with geomean IPC,
/// mean L1 miss rate, prefetch outcome counts and relative traffic.
pub fn ablation_summary(reports: &[SimReport], title: &str) -> String {
    let mut out = header(title);
    // Collect labels in first-appearance order.
    let mut labels: Vec<String> = Vec::new();
    for r in reports {
        if !labels.contains(&r.label) {
            labels.push(r.label.clone());
        }
    }
    let mut t = TextTable::new(vec![
        "config",
        "geomean IPC",
        "vs base",
        "L1 miss%",
        "good pf",
        "bad pf",
        "issued",
    ]);
    let mut base_ipc = 0.0;
    for (i, label) in labels.iter().enumerate() {
        let rows = with_label(reports, label);
        let ipcs: Vec<f64> = rows.iter().map(|r| r.ipc()).collect();
        let g = geomean(&ipcs);
        if i == 0 {
            base_ipc = g;
        }
        let miss = mean(
            &rows
                .iter()
                .map(|r| r.stats.l1.miss_rate())
                .collect::<Vec<_>>(),
        );
        let good: u64 = rows.iter().map(|r| r.stats.good_total()).sum();
        let bad: u64 = rows.iter().map(|r| r.stats.bad_total()).sum();
        let issued: u64 = rows.iter().map(|r| r.stats.prefetches_issued.total()).sum();
        t.row(vec![
            label.clone(),
            f3(g),
            if i == 0 {
                "base".to_string()
            } else {
                pct(g / base_ipc - 1.0)
            },
            pct(miss),
            good.to_string(),
            bad.to_string(),
            issued.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: u64 = 4_000;

    #[test]
    fn experiments_list_is_dispatchable() {
        for name in EXPERIMENTS {
            // table1 is static; everything else runs a tiny grid.
            let out = run_experiment(name, N, None).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(out.contains("=="), "{name} missing header");
        }
    }

    #[test]
    fn unknown_experiment_errors() {
        assert!(run_experiment("fig99", N, None).is_err());
    }

    #[test]
    fn table1_mentions_key_parameters() {
        let t = table1();
        assert!(t.contains("8KB"));
        assert!(t.contains("512KB"));
        assert!(t.contains("4096 entries"));
        assert!(t.contains("150 cycles"));
    }

    #[test]
    fn json_dump_written() {
        let dir = std::env::temp_dir().join("ppf-fig-test");
        let dir_s = dir.to_str().unwrap();
        run_experiment("fig2", N, Some(dir_s)).unwrap();
        let data = std::fs::read_to_string(dir.join("fig2.json")).unwrap();
        assert!(data.contains("\"workload\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
