//! Sharded sweep fabric: deterministic cell partitioning, self-describing
//! result fragments, and the merge engine that reassembles them.
//!
//! `figures --shard K/N` partitions every experiment's cell list by
//! content-hash key ([`shard_of`]) — stable under experiment reordering,
//! grid growth elsewhere, and machine boundaries — runs only shard `K`,
//! and emits one [`ExperimentFragment`] per experiment plus one
//! [`ShardManifest`] describing exactly which cells the shard covered.
//! `figures merge DIR...` validates the manifests against each other
//! (schema version, sweep parameters, overlap) and reassembles the
//! fragments into per-experiment documents byte-identical to an unsharded
//! `figures --json` run. Partial coverage is a first-class outcome
//! ([`MergeOutcome::Partial`], exit code 2 at the CLI), not an error:
//! a fleet that lost a runner reports precisely which cells are missing.

use crate::figures::ExperimentDoc;
use ppf_sim::experiments::CellFailure;
use ppf_sim::schedule::{fnv1a, FNV_OFFSET};
use ppf_sim::SimReport;
use ppf_types::{json_struct, FromJson, PpfError, ToJson};
use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};

/// Schema version stamped into every fragment and manifest. Merging
/// documents with any other version is refused: result files are
/// artifacts shipped between machines, so silent cross-version mixing
/// would be corruption, not compatibility.
pub const SHARD_SCHEMA_VERSION: u64 = 1;

/// The 1-based shard owning `key` out of `count` shards: a pure function
/// of the cell's content-hash key, so the partition is identical on every
/// machine and unaffected by experiment order or grid additions elsewhere.
pub fn shard_of(key: &str, count: u64) -> u64 {
    fnv1a(FNV_OFFSET, key.as_bytes()) % count.max(1) + 1
}

/// One shard assignment `K/N`: this invocation runs shard `K` of `N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// 1-based shard index (`1 ..= count`).
    pub index: u64,
    /// Total number of shards.
    pub count: u64,
}

impl ShardSpec {
    /// Parse `"K/N"` (both 1-based; `K ∈ 1..=N`).
    pub fn parse(s: &str) -> Result<Self, PpfError> {
        let err =
            || PpfError::config_invalid(format!("--shard wants K/N with 1 <= K <= N, got '{s}'"));
        let (k, n) = s.split_once('/').ok_or_else(err)?;
        let index: u64 = k.trim().parse().map_err(|_| err())?;
        let count: u64 = n.trim().parse().map_err(|_| err())?;
        if index == 0 || count == 0 || index > count {
            return Err(err());
        }
        Ok(ShardSpec { index, count })
    }

    /// Does this shard own the cell with content-hash `key`?
    pub fn contains(&self, key: &str) -> bool {
        shard_of(key, self.count) == self.index
    }
}

impl std::fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// One cell's result inside a fragment: its position in the experiment's
/// grid, its content-hash key, and exactly one of report/failure.
#[derive(Debug, Clone, PartialEq)]
pub struct FragmentEntry {
    /// The cell's 0-based position in the experiment's full grid.
    pub index: u64,
    /// The cell's content-hash key (`ppf_sim::schedule::cell_key`).
    pub key: String,
    /// The cell's report, when it completed.
    pub report: Option<SimReport>,
    /// The cell's structured failure, when it did not.
    pub failure: Option<CellFailure>,
}

json_struct!(FragmentEntry {
    index,
    key,
    report,
    failure,
});

/// One experiment's share of one shard's results — the unit `figures
/// merge` reassembles. Self-describing: it carries everything needed to
/// validate it against its manifest and its sibling fragments.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentFragment {
    /// Fragment schema version ([`SHARD_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Experiment name (matches the filename stem).
    pub experiment: String,
    /// 1-based index of the shard that produced this fragment.
    pub shard_index: u64,
    /// Total shards in the sweep this fragment belongs to.
    pub shard_count: u64,
    /// Cells in the experiment's *full* grid (all shards together).
    pub total_cells: u64,
    /// This shard's cells, in grid order.
    pub entries: Vec<FragmentEntry>,
}

json_struct!(ExperimentFragment {
    schema_version,
    experiment,
    shard_index,
    shard_count,
    total_cells,
    entries,
});

/// One experiment's coverage record inside a [`ShardManifest`].
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestExperiment {
    /// Experiment name.
    pub experiment: String,
    /// Cells in the experiment's full grid.
    pub total_cells: u64,
    /// Grid indices this shard covered, ascending.
    pub indices: Vec<u64>,
    /// Content-hash keys of the covered cells, parallel to `indices`.
    pub keys: Vec<String>,
}

json_struct!(ManifestExperiment {
    experiment,
    total_cells,
    indices,
    keys,
});

/// The self-description one sharded `figures` invocation writes beside
/// its fragments (`MANIFEST.json`): which shard it was, which sweep
/// parameters it ran under, and exactly which cells it covered. Merge
/// validation is driven entirely by manifests — fragments are then
/// checked against them.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardManifest {
    /// Manifest schema version ([`SHARD_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// 1-based index of the shard that wrote this manifest.
    pub shard_index: u64,
    /// Total shards in the sweep.
    pub shard_count: u64,
    /// Instruction budget the sweep ran with (`figures --insts`).
    pub insts: u64,
    /// Workload seeds averaged per cell (`figures --seeds`).
    pub seeds: u64,
    /// Per-experiment coverage, in invocation order.
    pub experiments: Vec<ManifestExperiment>,
}

json_struct!(ShardManifest {
    schema_version,
    shard_index,
    shard_count,
    insts,
    seeds,
    experiments,
});

/// The filename of a shard's manifest inside its fragment directory.
pub const MANIFEST_FILE: &str = "MANIFEST.json";

/// A completed merge's accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeSummary {
    /// Shards merged.
    pub shards: u64,
    /// Experiments reassembled (one output document each).
    pub experiments: u64,
    /// Total cells across all experiments.
    pub cells: u64,
}

/// The outcome of a merge whose inputs were mutually *consistent*:
/// complete (documents written) or partial (gaps reported, nothing
/// written). Inconsistent inputs — version skew, parameter mismatch,
/// overlapping coverage — are a `shard-mismatch` error instead.
#[derive(Debug, Clone, PartialEq)]
pub enum MergeOutcome {
    /// Every cell of every experiment was covered exactly once; merged
    /// documents were written.
    Complete(MergeSummary),
    /// Coverage has gaps: for each affected experiment, the missing grid
    /// indices (ascending). Nothing was written.
    Partial {
        /// `(experiment, missing indices)` pairs, in manifest order.
        missing: Vec<(String, Vec<u64>)>,
    },
}

/// Read and parse one shard directory's manifest.
fn load_manifest(dir: &Path) -> Result<ShardManifest, PpfError> {
    let path = dir.join(MANIFEST_FILE);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| PpfError::io(e.to_string()).context(format!("reading {}", path.display())))?;
    ShardManifest::from_json_str(&text)
        .map_err(|e| PpfError::shard_mismatch(e).context(format!("parsing {}", path.display())))
}

/// Read and parse one experiment fragment from a shard directory.
fn load_fragment(dir: &Path, experiment: &str) -> Result<ExperimentFragment, PpfError> {
    let path = dir.join(format!("{experiment}.fragment.json"));
    let text = std::fs::read_to_string(&path)
        .map_err(|e| PpfError::io(e.to_string()).context(format!("reading {}", path.display())))?;
    ExperimentFragment::from_json_str(&text)
        .map_err(|e| PpfError::shard_mismatch(e).context(format!("parsing {}", path.display())))
}

/// Cross-validate `manifest` against the reference (first) manifest.
fn check_manifest_pair(reference: &ShardManifest, m: &ShardManifest) -> Result<(), PpfError> {
    if m.shard_count != reference.shard_count {
        return Err(PpfError::shard_mismatch(format!(
            "shard {} says the sweep has {} shards, shard {} says {}",
            reference.shard_index, reference.shard_count, m.shard_index, m.shard_count
        )));
    }
    if m.insts != reference.insts || m.seeds != reference.seeds {
        return Err(PpfError::shard_mismatch(format!(
            "sweep parameters differ: shard {} ran insts={} seeds={}, shard {} ran insts={} seeds={}",
            reference.shard_index,
            reference.insts,
            reference.seeds,
            m.shard_index,
            m.insts,
            m.seeds
        )));
    }
    let names = |man: &ShardManifest| -> Vec<(String, u64)> {
        man.experiments
            .iter()
            .map(|e| (e.experiment.clone(), e.total_cells))
            .collect()
    };
    if names(m) != names(reference) {
        return Err(PpfError::shard_mismatch(format!(
            "experiment sets differ between shard {} and shard {}",
            reference.shard_index, m.shard_index
        )));
    }
    Ok(())
}

/// Merge the shard fragment directories `dirs` into per-experiment JSON
/// documents under `out_dir`, byte-identical to an unsharded
/// `figures --json` run of the same sweep.
///
/// Invariants enforced (violations are `shard-mismatch` errors):
/// schema versions match [`SHARD_SCHEMA_VERSION`]; every manifest agrees
/// on shard count, instruction budget, seed count and experiment set;
/// shard indices are distinct and in range; every fragment matches its
/// manifest's coverage claim; no cell is covered twice. Gaps in coverage
/// are not an error but [`MergeOutcome::Partial`] — nothing is written.
pub fn merge_shards(dirs: &[PathBuf], out_dir: &Path) -> Result<MergeOutcome, PpfError> {
    if dirs.is_empty() {
        return Err(PpfError::config_invalid(
            "merge wants at least one fragment directory",
        ));
    }
    let manifests: Vec<ShardManifest> = dirs
        .iter()
        .map(|d| load_manifest(d))
        .collect::<Result<_, _>>()?;
    for m in &manifests {
        if m.schema_version != SHARD_SCHEMA_VERSION {
            return Err(PpfError::shard_mismatch(format!(
                "shard {} has schema version {}, this binary speaks {}",
                m.shard_index, m.schema_version, SHARD_SCHEMA_VERSION
            )));
        }
        if m.shard_index == 0 || m.shard_index > m.shard_count {
            return Err(PpfError::shard_mismatch(format!(
                "shard index {} out of range 1..={}",
                m.shard_index, m.shard_count
            )));
        }
    }
    let reference = &manifests[0];
    let mut seen_shards: HashMap<u64, usize> = HashMap::new();
    for (i, m) in manifests.iter().enumerate() {
        check_manifest_pair(reference, m)?;
        if let Some(prev) = seen_shards.insert(m.shard_index, i) {
            return Err(PpfError::shard_mismatch(format!(
                "shard index {} appears twice ({} and {})",
                m.shard_index,
                dirs[prev].display(),
                dirs[i].display()
            )));
        }
    }

    // Assemble per-experiment coverage: grid index → entry, enforcing
    // exactly-once ownership across shards.
    let mut merged_docs: Vec<(String, ExperimentDoc)> = Vec::new();
    let mut missing: Vec<(String, Vec<u64>)> = Vec::new();
    let mut cells: u64 = 0;
    for exp in &reference.experiments {
        let mut by_index: BTreeMap<u64, (usize, FragmentEntry)> = BTreeMap::new();
        for (i, (dir, m)) in dirs.iter().zip(&manifests).enumerate() {
            let frag = load_fragment(dir, &exp.experiment)?;
            if frag.schema_version != SHARD_SCHEMA_VERSION
                || frag.shard_index != m.shard_index
                || frag.shard_count != m.shard_count
                || frag.total_cells != exp.total_cells
            {
                return Err(PpfError::shard_mismatch(format!(
                    "fragment {}/{}.fragment.json disagrees with its manifest",
                    dir.display(),
                    exp.experiment
                )));
            }
            let claim = m
                .experiments
                .iter()
                .find(|e| e.experiment == exp.experiment)
                .expect("experiment sets already checked equal");
            let got: Vec<u64> = frag.entries.iter().map(|e| e.index).collect();
            if got != claim.indices {
                return Err(PpfError::shard_mismatch(format!(
                    "fragment {}/{}.fragment.json covers cells {:?} but its manifest claims {:?}",
                    dir.display(),
                    exp.experiment,
                    got,
                    claim.indices
                )));
            }
            for entry in frag.entries {
                if entry.index >= exp.total_cells
                    || entry.report.is_some() == entry.failure.is_some()
                {
                    return Err(PpfError::shard_mismatch(format!(
                        "fragment {}/{}.fragment.json entry {} is malformed",
                        dir.display(),
                        exp.experiment,
                        entry.index
                    )));
                }
                let idx = entry.index;
                if let Some((prev, _)) = by_index.insert(idx, (i, entry)) {
                    return Err(PpfError::shard_mismatch(format!(
                        "cell {idx} of {} covered by both {} and {}",
                        exp.experiment,
                        dirs[prev].display(),
                        dirs[i].display()
                    )));
                }
            }
        }
        let gaps: Vec<u64> = (0..exp.total_cells)
            .filter(|i| !by_index.contains_key(i))
            .collect();
        cells += exp.total_cells;
        if !gaps.is_empty() {
            missing.push((exp.experiment.clone(), gaps));
            continue;
        }
        let mut reports = Vec::new();
        let mut failures = Vec::new();
        for (_, (_, entry)) in by_index {
            match (entry.report, entry.failure) {
                (Some(r), None) => reports.push(r),
                (None, Some(f)) => failures.push(f),
                _ => unreachable!("entry shape validated above"),
            }
        }
        merged_docs.push((
            exp.experiment.clone(),
            ExperimentDoc {
                experiment: exp.experiment.clone(),
                reports,
                failures,
            },
        ));
    }
    if !missing.is_empty() {
        return Ok(MergeOutcome::Partial { missing });
    }

    std::fs::create_dir_all(out_dir).map_err(|e| {
        PpfError::io(e.to_string()).context(format!("creating merge dir {}", out_dir.display()))
    })?;
    let experiments = merged_docs.len() as u64;
    for (name, doc) in merged_docs {
        let path = out_dir.join(format!("{name}.json"));
        std::fs::write(&path, doc.to_json_pretty()).map_err(|e| {
            PpfError::io(e.to_string()).context(format!("writing {}", path.display()))
        })?;
    }
    Ok(MergeOutcome::Complete(MergeSummary {
        shards: manifests.len() as u64,
        experiments,
        cells,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_spec_parses_and_rejects() {
        assert_eq!(
            ShardSpec::parse("2/3").unwrap(),
            ShardSpec { index: 2, count: 3 }
        );
        assert_eq!(
            ShardSpec::parse("1/1").unwrap(),
            ShardSpec { index: 1, count: 1 }
        );
        for bad in ["0/3", "4/3", "3", "a/b", "", "1/0", "-1/2"] {
            assert!(ShardSpec::parse(bad).is_err(), "'{bad}' must not parse");
        }
        assert_eq!(ShardSpec { index: 2, count: 5 }.to_string(), "2/5");
    }

    #[test]
    fn shard_of_partitions_deterministically() {
        let keys: Vec<String> = (0..500).map(|i| format!("{i:016x}")).collect();
        for n in 1..=5u64 {
            let mut per_shard = vec![0usize; n as usize];
            for key in &keys {
                let s = shard_of(key, n);
                assert!((1..=n).contains(&s), "shard {s} out of range 1..={n}");
                assert_eq!(s, shard_of(key, n), "stable across calls");
                per_shard[(s - 1) as usize] += 1;
            }
            // Exactly one owner per key ⇒ counts sum to the key count; and
            // the hash spreads: no shard is empty at 500 keys.
            assert_eq!(per_shard.iter().sum::<usize>(), keys.len());
            assert!(per_shard.iter().all(|&c| c > 0), "n={n}: {per_shard:?}");
        }
        // 1-of-1 owns everything.
        assert!(keys
            .iter()
            .all(|k| ShardSpec { index: 1, count: 1 }.contains(k)));
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let m = ShardManifest {
            schema_version: SHARD_SCHEMA_VERSION,
            shard_index: 2,
            shard_count: 3,
            insts: 20_000,
            seeds: 1,
            experiments: vec![ManifestExperiment {
                experiment: "fig2".to_string(),
                total_cells: 10,
                indices: vec![1, 4, 7],
                keys: vec!["a".into(), "b".into(), "c".into()],
            }],
        };
        let back = ShardManifest::from_json_str(&m.to_json_pretty()).unwrap();
        assert_eq!(back, m);
    }
}
