//! Shared experiment-to-table formatting for the `figures` binary and the
//! Criterion benches. See [`figures`].

pub mod figures;
