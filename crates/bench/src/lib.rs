//! Shared experiment-to-table formatting for the `figures` binary and the
//! Criterion benches ([`figures`]), plus checkpoint/resume for long sweeps
//! ([`checkpoint`]).

pub mod checkpoint;
pub mod figures;
pub mod memo;
pub mod shard;
pub mod throughput;
pub mod timeline;
