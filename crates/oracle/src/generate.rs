//! Seeded random event-stream generators for the lockstep campaign.
//!
//! [`case`] maps `(kind, seed)` deterministically to a `(config, events)`
//! pair via [`SplitMix64`]; the campaign in `tests/oracle.rs` fans a base
//! seed out with `ppf_sim::fanned_seed` so every case is independently
//! reproducible from its number alone.
//!
//! The streams are deliberately *hostile* rather than realistic: tiny
//! geometries so sets/tables alias constantly, repeated lines so merge and
//! recycle paths fire, stale timestamps for the port arbiter, and ~10%
//! already-expired MSHR inserts. Realistic traffic is the simulator's job
//! (covered by the end-to-end tap test); the generator's job is corner
//! pressure.

use crate::event::obj;
use ppf_types::{JsonValue, PrefetchSource, SplitMix64, ToJson};

/// Deterministically generate the `(config, events)` for one campaign case.
///
/// Panics on an unknown `kind` — the set of kinds is closed (see
/// [`crate::harness_for`]).
pub fn case(kind: &str, seed: u64) -> (JsonValue, Vec<JsonValue>) {
    let mut rng = SplitMix64::new(seed);
    match kind {
        "cache" => cache_case(&mut rng),
        "filter" => filter_case(&mut rng),
        "mshr" => mshr_case(&mut rng),
        "ports" => ports_case(&mut rng),
        other => panic!("no generator for kind `{other}`"),
    }
}

fn source(rng: &mut SplitMix64) -> JsonValue {
    rng.pick(&PrefetchSource::ALL).to_json()
}

fn pc(rng: &mut SplitMix64, pool: u64) -> u64 {
    0x1000 + 4 * rng.below(pool)
}

fn cache_case(rng: &mut SplitMix64) -> (JsonValue, Vec<JsonValue>) {
    let ways = *rng.pick(&[1usize, 2, 4]);
    let sets = *rng.pick(&[4usize, 8, 16]);
    let line_bytes = 32u64;
    let config = obj(&[
        ("size_bytes", ((sets * ways) as u64 * line_bytes).to_json()),
        ("line_bytes", line_bytes.to_json()),
        ("ways", (ways as u64).to_json()),
        (
            "policy",
            JsonValue::Str(if rng.chance(0.5) { "Lru" } else { "Fifo" }.into()),
        ),
    ]);
    // Keep the line pool ~3x capacity: plenty of conflict evictions while
    // still revisiting lines often enough to exercise hits and refills.
    let lines = (sets * ways * 3) as u64;
    let n = 160 + rng.below(80);
    let mut events = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let line = rng.below(lines).to_json();
        let roll = rng.below(100);
        events.push(match roll {
            0..=34 => obj(&[
                ("op", JsonValue::Str("probe".into())),
                ("line", line),
                ("write", rng.chance(0.3).to_json()),
            ]),
            35..=59 => obj(&[("op", JsonValue::Str("fill_demand".into())), ("line", line)]),
            60..=79 => obj(&[
                ("op", JsonValue::Str("fill_prefetch".into())),
                ("line", line),
                ("pc", pc(rng, 16).to_json()),
                ("source", source(rng)),
            ]),
            80..=89 => obj(&[("op", JsonValue::Str("mark_dirty".into())), ("line", line)]),
            90..=94 => obj(&[("op", JsonValue::Str("invalidate".into())), ("line", line)]),
            _ => obj(&[("op", JsonValue::Str("contains".into())), ("line", line)]),
        });
    }
    (config, events)
}

fn filter_case(rng: &mut SplitMix64) -> (JsonValue, Vec<JsonValue>) {
    // Half the campaign exercises the perceptron filter; the other half
    // splits across the paper's counter-table kinds. Salted and partitioned
    // variants are drawn independently below, so hardened perceptron
    // configs come up as often as hardened counter tables.
    let kind = *rng.pick(&[
        "Pa",
        "Pc",
        "Hybrid",
        "Perceptron",
        "Perceptron",
        "Perceptron",
    ]);
    // split_by_source only applies to the flat kinds.
    let split = (kind == "Pa" || kind == "Pc") && rng.chance(0.25);
    // Half the campaign runs hardened: a random keyed-hash salt and/or a
    // partitioned table, so the salted fold and the per-tenant slot math
    // stay under lockstep alongside the paper's shared-table baseline.
    let salt = if rng.chance(0.5) { rng.next_u64() } else { 0 };
    let partitions = *rng.pick(&[1u64, 1, 2, 4]);
    let config = obj(&[
        ("kind", JsonValue::Str(kind.into())),
        ("table_entries", rng.pick(&[64u64, 128, 256]).to_json()),
        ("counter_bits", rng.pick(&[1u64, 2, 3]).to_json()),
        (
            "counter_init",
            JsonValue::Str((*rng.pick(&["WeaklyGood", "StronglyGood", "WeaklyBad"])).into()),
        ),
        ("adaptive_accuracy_threshold", JsonValue::Null),
        ("adaptive_window", 1024u64.to_json()),
        (
            "recovery_window",
            if rng.chance(0.2) {
                0u64
            } else {
                rng.range(50, 400)
            }
            .to_json(),
        ),
        ("split_by_source", split.to_json()),
        ("hash_salt", salt.to_json()),
        ("tenant_partitions", partitions.to_json()),
    ]);
    let n = 240 + rng.below(120);
    let mut events = Vec::with_capacity(n as usize);
    let mut now = 0u64;
    for _ in 0..n {
        now += rng.below(20);
        // A small line pool relative to the reject log makes demand misses
        // actually land on logged rejections. Tenants run past MAX_TENANTS
        // so the partition wrap-around is exercised too.
        let line = rng.below(512).to_json();
        let tenant = rng.below(6).to_json();
        let roll = rng.below(100);
        events.push(match roll {
            0..=39 => obj(&[
                ("op", JsonValue::Str("lookup".into())),
                ("line", line),
                ("pc", pc(rng, 64).to_json()),
                ("source", source(rng)),
                ("tenant", tenant),
                ("depth", rng.below(20).to_json()),
                ("now", now.to_json()),
            ]),
            40..=79 => obj(&[
                ("op", JsonValue::Str("evict".into())),
                ("line", line),
                ("pc", pc(rng, 64).to_json()),
                ("source", source(rng)),
                ("tenant", tenant),
                ("depth", rng.below(20).to_json()),
                ("referenced", rng.chance(0.5).to_json()),
            ]),
            _ => obj(&[
                ("op", JsonValue::Str("demand_miss".into())),
                ("line", line),
                ("now", now.to_json()),
            ]),
        });
    }
    (config, events)
}

fn mshr_case(rng: &mut SplitMix64) -> (JsonValue, Vec<JsonValue>) {
    let cap = *rng.pick(&[2u64, 4, 8]);
    let config = obj(&[("cap", cap.to_json())]);
    let n = 160 + rng.below(80);
    let mut events = Vec::with_capacity(n as usize);
    let mut now = 0u64;
    for _ in 0..n {
        now += rng.below(30);
        // Few distinct lines so merges are common at every capacity.
        let line = rng.below(cap * 2).to_json();
        let roll = rng.below(100);
        events.push(match roll {
            0..=59 => {
                // ~10% of inserts are already expired on arrival.
                let ready_at = if rng.chance(0.1) {
                    now.saturating_sub(rng.below(20))
                } else {
                    now + rng.below(100)
                };
                obj(&[
                    ("op", JsonValue::Str("insert".into())),
                    ("line", line),
                    ("ready_at", ready_at.to_json()),
                    ("now", now.to_json()),
                ])
            }
            60..=84 => obj(&[
                ("op", JsonValue::Str("ready_at".into())),
                ("line", line),
                ("now", now.to_json()),
            ]),
            _ => obj(&[
                ("op", JsonValue::Str("live".into())),
                ("now", now.to_json()),
            ]),
        });
    }
    (config, events)
}

fn ports_case(rng: &mut SplitMix64) -> (JsonValue, Vec<JsonValue>) {
    let ports = rng.range(1, 4);
    let config = obj(&[("ports", ports.to_json())]);
    let n = 160 + rng.below(80);
    let mut events = Vec::with_capacity(n as usize);
    let mut t = 1u64;
    for _ in 0..n {
        t += rng.below(3);
        // ~10% of operations use a stale timestamp to exercise the
        // backwards-clock refusal paths.
        let now = if rng.chance(0.1) {
            t.saturating_sub(rng.range(1, 5))
        } else {
            t
        };
        let roll = rng.below(100);
        events.push(match roll {
            0..=59 => obj(&[
                ("op", JsonValue::Str("try_acquire".into())),
                ("now", now.to_json()),
            ]),
            60..=84 => obj(&[
                ("op", JsonValue::Str("free".into())),
                ("now", now.to_json()),
            ]),
            _ => obj(&[
                ("op", JsonValue::Str("saturated".into())),
                ("now", now.to_json()),
            ]),
        });
    }
    (config, events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic_per_seed() {
        for kind in ["cache", "filter", "mshr", "ports"] {
            assert_eq!(case(kind, 42), case(kind, 42), "{kind} must be stable");
            assert_ne!(case(kind, 1).1, case(kind, 2).1, "{kind} seeds must differ");
        }
    }
}
