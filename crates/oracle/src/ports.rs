//! Untimed reference model of the per-cycle L1 port budget.
//!
//! The real [`PortArbiter`] is already small, but it has shipped a real bug
//! (the stale-cycle reset that over-granted ports in release builds), which
//! makes it exactly the kind of structure worth cross-checking. The oracle
//! is three integers and the spec's rules written longhand:
//!
//! * the grant counter belongs to one cycle and only ever moves *forward*;
//! * an acquire with a stale timestamp is refused and changes nothing;
//! * reads (`free`, `saturated`) never advance the counter — a future
//!   timestamp reports every port free, a stale one reports zero.

use crate::event::{op, u};
use crate::{event, Harness};
use ppf_mem::PortArbiter;
use ppf_types::{Cycle, JsonValue, ToJson};

/// Naive reference arbiter: `(ports, cycle, used)`.
#[derive(Debug, Clone)]
pub struct RefPorts {
    ports: usize,
    cycle: Cycle,
    used: usize,
}

impl RefPorts {
    /// An arbiter for `ports` universal ports (`ports > 0`).
    pub fn new(ports: usize) -> Self {
        assert!(ports > 0);
        RefPorts {
            ports,
            cycle: 0,
            used: 0,
        }
    }

    /// Try to take one port in cycle `now`.
    pub fn try_acquire(&mut self, now: Cycle) -> bool {
        if now < self.cycle {
            return false;
        }
        if now > self.cycle {
            self.cycle = now;
            self.used = 0;
        }
        if self.used < self.ports {
            self.used += 1;
            true
        } else {
            false
        }
    }

    /// Ports still free in cycle `now` (pure read).
    pub fn free(&self, now: Cycle) -> usize {
        if now > self.cycle {
            self.ports
        } else if now == self.cycle {
            self.ports - self.used
        } else {
            0
        }
    }

    /// True when no port can be granted in cycle `now`.
    pub fn saturated(&self, now: Cycle) -> bool {
        self.free(now) == 0
    }
}

/// Lockstep harness pairing the real [`PortArbiter`] with [`RefPorts`].
pub struct PortsHarness {
    ports: usize,
    real: PortArbiter,
    oracle: RefPorts,
    /// Latest `now` seen, used to snapshot free-port state after each step.
    now: Cycle,
}

impl PortsHarness {
    /// Build from a repro/campaign config `{"ports": N}`.
    pub fn from_config(config: &JsonValue) -> Result<Self, String> {
        let ports = config
            .get("ports")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| "ports config missing or bad ports".to_string())?
            as usize;
        if ports == 0 {
            return Err("ports must be nonzero".into());
        }
        Ok(PortsHarness {
            ports,
            real: PortArbiter::new(ports),
            oracle: RefPorts::new(ports),
            now: 0,
        })
    }
}

impl Harness for PortsHarness {
    fn kind(&self) -> &'static str {
        "ports"
    }

    fn config(&self) -> JsonValue {
        event::obj(&[("ports", (self.ports as u64).to_json())])
    }

    fn reset(&mut self) {
        self.real = PortArbiter::new(self.ports);
        self.oracle = RefPorts::new(self.ports);
        self.now = 0;
    }

    fn step(&mut self, e: &JsonValue) -> Result<(), String> {
        let now = u(e, "now");
        self.now = now;
        match op(e) {
            "try_acquire" => {
                let real = self.real.try_acquire(now);
                let oracle = self.oracle.try_acquire(now);
                if real != oracle {
                    return Err(format!(
                        "try_acquire: real {real} vs oracle {oracle} for {e}"
                    ));
                }
            }
            "free" => {
                let real = self.real.free(now);
                let oracle = self.oracle.free(now);
                if real != oracle {
                    return Err(format!("free: real {real} vs oracle {oracle} for {e}"));
                }
            }
            "saturated" => {
                let real = self.real.saturated(now);
                let oracle = self.oracle.saturated(now);
                if real != oracle {
                    return Err(format!("saturated: real {real} vs oracle {oracle} for {e}"));
                }
            }
            other => panic!("ports harness: unknown op `{other}` in {e}"),
        }
        // Beyond the queried observable, the whole visible state is the
        // free count at the current timestamp.
        let (real_free, oracle_free) = (self.real.free(self.now), self.oracle.free(self.now));
        if real_free != oracle_free {
            return Err(format!(
                "free ports diverged at now={}: real {real_free} vs oracle {oracle_free}",
                self.now
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stale_acquire_is_refused_without_reset() {
        let mut p = RefPorts::new(2);
        assert!(p.try_acquire(10));
        assert!(p.try_acquire(10));
        assert!(!p.try_acquire(9), "stale acquire refused");
        assert_eq!(p.free(9), 0);
        assert!(!p.try_acquire(10), "budget still spent");
    }

    #[test]
    fn future_read_does_not_roll() {
        let mut p = RefPorts::new(1);
        assert!(p.try_acquire(3));
        assert_eq!(p.free(4), 1);
        assert!(!p.try_acquire(3), "cycle 3 budget unchanged by the read");
    }
}
