//! Untimed reference model of the set-associative cache with PIB/RIB bits.
//!
//! The real [`ppf_mem::cache::Cache`] stores lines in a flat array with
//! per-line replacement stamps and recomputes victims from stamp minima.
//! The oracle keeps each set as a plain vector in **recency order** (front =
//! next victim) and re-derives every rule from the paper's text:
//!
//! * A prefetch fill sets PIB, clears RIB, sets the NSP tag, and attaches
//!   the prefetch's provenance (§4).
//! * A demand reference to a prefetched line sets RIB (first such reference
//!   is the "good prefetch" moment) and consumes the NSP tag.
//! * Eviction reports the line, its dirty bit, and — for prefetched lines —
//!   the provenance plus the RIB value, the filter's only training input.
//!
//! Recency bookkeeping mirrors the real stamp discipline: a *fill* always
//! refreshes recency (even under FIFO — re-filling a resident line restamps
//! it in the real array), while a *probe hit* refreshes recency only under
//! LRU. Random replacement is excluded from campaigns: it would couple the
//! oracle to the real structure's RNG draw order, which is exactly the kind
//! of incidental detail a reference model must not encode.

use crate::event::{b, obj, op, s, u, u_or};
use crate::Harness;
use ppf_mem::cache::{Cache, Evicted, FillKind, LineState, ProbeHit};
use ppf_mem::replacement::ReplacementPolicy;
use ppf_types::{
    CacheConfig, FromJson, JsonValue, LineAddr, PrefetchOrigin, PrefetchSource, ToJson,
};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RefLine {
    line: LineAddr,
    dirty: bool,
    pib: bool,
    rib: bool,
    nsp_tag: bool,
    origin: Option<PrefetchOrigin>,
}

impl RefLine {
    fn state(&self) -> LineState {
        LineState {
            line: self.line,
            dirty: self.dirty,
            pib: self.pib,
            rib: self.rib,
            nsp_tag: self.nsp_tag,
            origin: self.origin,
        }
    }

    fn evict_report(&self) -> Evicted {
        Evicted {
            line: self.line,
            dirty: self.dirty,
            prefetch: self
                .pib
                .then(|| (self.origin.expect("PIB line carries its origin"), self.rib)),
        }
    }
}

/// Naive reference cache: one recency-ordered `Vec` per set.
#[derive(Debug, Clone)]
pub struct RefCache {
    sets: Vec<Vec<RefLine>>,
    ways: usize,
    set_mask: u64,
    /// Probe hits refresh recency (LRU) or not (FIFO).
    touch_on_hit: bool,
}

impl RefCache {
    /// Build the reference model for the same geometry as the real cache.
    pub fn new(cfg: &CacheConfig, policy: ReplacementPolicy) -> Self {
        let sets = cfg.sets();
        assert!(sets.is_power_of_two());
        assert!(
            !matches!(policy, ReplacementPolicy::Random),
            "random replacement is not oracle-checkable"
        );
        RefCache {
            sets: vec![Vec::new(); sets],
            ways: cfg.ways,
            set_mask: (sets - 1) as u64,
            touch_on_hit: matches!(policy, ReplacementPolicy::Lru),
        }
    }

    fn set_of(&mut self, line: LineAddr) -> &mut Vec<RefLine> {
        let idx = (line.0 & self.set_mask) as usize;
        &mut self.sets[idx]
    }

    /// Non-mutating presence check.
    pub fn contains(&self, line: LineAddr) -> bool {
        let idx = (line.0 & self.set_mask) as usize;
        self.sets[idx].iter().any(|l| l.line == line)
    }

    /// Demand reference; mirrors [`Cache::probe`]'s observable contract.
    pub fn probe(&mut self, line: LineAddr, is_write: bool) -> Option<ProbeHit> {
        let touch = self.touch_on_hit;
        let set = self.set_of(line);
        let pos = set.iter().position(|l| l.line == line)?;
        let l = &mut set[pos];
        let hit = ProbeHit {
            was_prefetched: l.pib,
            first_use: l.pib && !l.rib,
            nsp_tagged: l.nsp_tag,
        };
        if l.pib {
            l.rib = true;
        }
        l.nsp_tag = false;
        if is_write {
            l.dirty = true;
        }
        if touch {
            let moved = set.remove(pos);
            set.push(moved);
        }
        Some(hit)
    }

    /// Install a line; mirrors [`Cache::fill`]'s observable contract.
    pub fn fill(&mut self, line: LineAddr, kind: FillKind) -> Option<Evicted> {
        let ways = self.ways;
        let set = self.set_of(line);
        if let Some(pos) = set.iter().position(|l| l.line == line) {
            // Resident refill: a demand fill of a prefetched line counts as
            // a reference; any fill refreshes recency (the real array
            // restamps unconditionally, under FIFO too).
            let mut l = set.remove(pos);
            if matches!(kind, FillKind::Demand) && l.pib {
                l.rib = true;
                l.nsp_tag = false;
            }
            set.push(l);
            return None;
        }
        let report = if set.len() == ways {
            Some(set.remove(0).evict_report())
        } else {
            None
        };
        set.push(match kind {
            FillKind::Demand => RefLine {
                line,
                dirty: false,
                pib: false,
                rib: false,
                nsp_tag: false,
                origin: None,
            },
            FillKind::Prefetch(origin) => RefLine {
                line,
                dirty: false,
                pib: true,
                rib: false,
                nsp_tag: true,
                origin: Some(origin),
            },
        });
        report
    }

    /// Mark a resident line dirty; `false` when not resident.
    pub fn mark_dirty(&mut self, line: LineAddr) -> bool {
        let set = self.set_of(line);
        match set.iter_mut().find(|l| l.line == line) {
            Some(l) => {
                l.dirty = true;
                true
            }
            None => false,
        }
    }

    /// Remove a line, reporting its eviction state.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<Evicted> {
        let set = self.set_of(line);
        let pos = set.iter().position(|l| l.line == line)?;
        Some(set.remove(pos).evict_report())
    }

    /// All resident lines, sorted by line number — the state compared
    /// against [`Cache::resident_lines`] after every event.
    pub fn resident_lines(&self) -> Vec<LineState> {
        let mut out: Vec<LineState> = self
            .sets
            .iter()
            .flat_map(|set| set.iter().map(RefLine::state))
            .collect();
        out.sort_by_key(|l| l.line.0);
        out
    }
}

/// Lockstep harness pairing the real [`Cache`] with [`RefCache`].
pub struct CacheHarness {
    cfg: CacheConfig,
    policy: ReplacementPolicy,
    real: Cache,
    oracle: RefCache,
}

impl CacheHarness {
    /// Build from a repro/campaign config:
    /// `{"size_bytes":..,"line_bytes":..,"ways":..,"policy":"Lru"|"Fifo"}`.
    pub fn from_config(config: &JsonValue) -> Result<Self, String> {
        let cfg = CacheConfig {
            size_bytes: usize::from_json(
                config.get("size_bytes").ok_or("cache config: size_bytes")?,
            )?,
            line_bytes: u32::from_json(
                config.get("line_bytes").ok_or("cache config: line_bytes")?,
            )?,
            ways: usize::from_json(config.get("ways").ok_or("cache config: ways")?)?,
            hit_latency: 1,
            ports: 1,
        };
        let policy = match config.get("policy").and_then(JsonValue::as_str) {
            Some("Lru") => ReplacementPolicy::Lru,
            Some("Fifo") => ReplacementPolicy::Fifo,
            other => return Err(format!("cache config: bad policy {other:?}")),
        };
        Ok(CacheHarness {
            real: Cache::new(&cfg, policy, 0),
            oracle: RefCache::new(&cfg, policy),
            cfg,
            policy,
        })
    }

    fn origin_of(e: &JsonValue) -> PrefetchOrigin {
        PrefetchOrigin {
            line: LineAddr(u(e, "line")),
            trigger_pc: u(e, "pc"),
            source: PrefetchSource::from_json(&JsonValue::Str(s(e, "source").to_string()))
                .unwrap_or_else(|err| panic!("bad prefetch source in {e}: {err}")),
            tenant: 0,
            depth: u_or(e, "depth", 0) as u8,
        }
    }

    fn check_state(&self) -> Result<(), String> {
        let real = self.real.resident_lines();
        let oracle = self.oracle.resident_lines();
        if real != oracle {
            return Err(format!(
                "resident state diverged: real {real:?} vs oracle {oracle:?}"
            ));
        }
        Ok(())
    }
}

fn diff<T: std::fmt::Debug + PartialEq>(what: &str, real: T, oracle: T) -> Result<(), String> {
    if real == oracle {
        Ok(())
    } else {
        Err(format!("{what}: real {real:?} vs oracle {oracle:?}"))
    }
}

impl Harness for CacheHarness {
    fn kind(&self) -> &'static str {
        "cache"
    }

    fn config(&self) -> JsonValue {
        obj(&[
            ("size_bytes", self.cfg.size_bytes.to_json()),
            ("line_bytes", self.cfg.line_bytes.to_json()),
            ("ways", self.cfg.ways.to_json()),
            (
                "policy",
                JsonValue::Str(
                    match self.policy {
                        ReplacementPolicy::Lru => "Lru",
                        ReplacementPolicy::Fifo => "Fifo",
                        ReplacementPolicy::Random => "Random",
                    }
                    .to_string(),
                ),
            ),
        ])
    }

    fn reset(&mut self) {
        self.real = Cache::new(&self.cfg, self.policy, 0);
        self.oracle = RefCache::new(&self.cfg, self.policy);
    }

    fn step(&mut self, event: &JsonValue) -> Result<(), String> {
        let line = LineAddr(u(event, "line"));
        match op(event) {
            "probe" => {
                let w = b(event, "write");
                diff(
                    "probe outcome",
                    self.real.probe(line, w),
                    self.oracle.probe(line, w),
                )?;
            }
            "fill_demand" => diff(
                "demand-fill eviction",
                self.real.fill(line, FillKind::Demand),
                self.oracle.fill(line, FillKind::Demand),
            )?,
            "fill_prefetch" => {
                let origin = Self::origin_of(event);
                diff(
                    "prefetch-fill eviction",
                    self.real.fill(line, FillKind::Prefetch(origin)),
                    self.oracle.fill(line, FillKind::Prefetch(origin)),
                )?;
            }
            "mark_dirty" => diff(
                "mark_dirty",
                self.real.mark_dirty(line),
                self.oracle.mark_dirty(line),
            )?,
            "invalidate" => diff(
                "invalidate report",
                self.real.invalidate(line),
                self.oracle.invalidate(line),
            )?,
            "contains" => diff(
                "contains",
                self.real.contains(line),
                self.oracle.contains(line),
            )?,
            other => panic!("cache harness: unknown op `{other}` in {event}"),
        }
        self.real
            .check_invariants()
            .map_err(|e| format!("real cache invariant broken: {e}"))?;
        self.check_state()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(size: usize, ways: usize) -> CacheConfig {
        CacheConfig {
            size_bytes: size,
            line_bytes: 32,
            ways,
            hit_latency: 1,
            ports: 1,
        }
    }

    fn origin(line: LineAddr) -> PrefetchOrigin {
        PrefetchOrigin {
            line,
            trigger_pc: 0x1000,
            source: PrefetchSource::Nsp,
            tenant: 0,
            depth: 0,
        }
    }

    #[test]
    fn pib_rib_lifecycle_matches_paper() {
        let mut c = RefCache::new(&cfg(128, 2), ReplacementPolicy::Lru);
        let a = LineAddr(0);
        assert!(c.fill(a, FillKind::Prefetch(origin(a))).is_none());
        let hit = c.probe(a, false).unwrap();
        assert!(hit.was_prefetched && hit.first_use && hit.nsp_tagged);
        let ev = c.invalidate(a).unwrap();
        assert!(ev.prefetch.unwrap().1, "referenced prefetch is good");
    }

    #[test]
    fn fifo_ignores_probe_recency_but_not_refill() {
        let mut c = RefCache::new(&cfg(64, 2), ReplacementPolicy::Fifo);
        c.fill(LineAddr(0), FillKind::Demand);
        c.fill(LineAddr(2), FillKind::Demand);
        c.probe(LineAddr(0), false);
        let ev = c.fill(LineAddr(4), FillKind::Demand).unwrap();
        assert_eq!(ev.line, LineAddr(0), "probe must not protect under FIFO");
        // A refill, by contrast, restamps even under FIFO.
        c.fill(LineAddr(2), FillKind::Demand);
        let ev = c.fill(LineAddr(6), FillKind::Demand).unwrap();
        assert_eq!(ev.line, LineAddr(4));
    }

    #[test]
    fn harness_round_trips_config() {
        let (config, _) = crate::generate::case("cache", 3);
        let h = CacheHarness::from_config(&config).unwrap();
        assert_eq!(h.config(), config);
    }
}
