//! Lockstep differential driver.
//!
//! [`run_lockstep`] resets a [`Harness`] and replays an event stream through
//! it one event at a time. The harness applies each event to the real
//! structure and to the reference model and compares every observable; the
//! first mismatch stops the run and is reported as a [`Divergence`] carrying
//! the failing step, the event, and the harness's description of what
//! differed.

use crate::Harness;
use ppf_types::JsonValue;

/// The first point at which the real structure and the oracle disagreed.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Zero-based index of the failing event in the stream.
    pub step: usize,
    /// The event that exposed the divergence.
    pub event: JsonValue,
    /// Harness-provided description of what differed.
    pub detail: String,
}

/// Replay `events` through `harness` from a fresh reset; `Some` on the
/// first divergence, `None` if the whole stream agrees.
pub fn run_lockstep(harness: &mut dyn Harness, events: &[JsonValue]) -> Option<Divergence> {
    harness.reset();
    for (step, event) in events.iter().enumerate() {
        if let Err(detail) = harness.step(event) {
            return Some(Divergence {
                step,
                event: event.clone(),
                detail,
            });
        }
    }
    None
}
