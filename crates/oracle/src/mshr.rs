//! Untimed reference model of the outstanding-miss file (MSHR).
//!
//! The real [`MshrFile`] recycles slots in place to stay allocation-free;
//! the oracle keeps a plain `Vec<(line, ready_at)>` and re-derives the four
//! insert rules from the spec, in priority order:
//!
//! 1. a live entry for the same line merges, keeping the *later* completion;
//! 2. otherwise the first expired slot (`ready_at <= now`) is recycled;
//! 3. otherwise a free slot is appended;
//! 4. otherwise the live entry completing soonest (first such slot on a
//!    tie) is replaced — the structure is timing-only, so overwriting loses
//!    accuracy, never correctness.
//!
//! Slot *positions* are an implementation detail; the compared state is the
//! sorted set of live `(line, ready_at)` pairs plus every query result.

use crate::event::{op, u};
use crate::{event, Harness};
use ppf_mem::MshrFile;
use ppf_types::{Cycle, JsonValue, LineAddr, ToJson};

/// Naive reference MSHR: a flat list of `(line, ready_at)` pairs.
#[derive(Debug, Clone)]
pub struct RefMshr {
    entries: Vec<(LineAddr, Cycle)>,
    cap: usize,
}

impl RefMshr {
    /// A file with `cap` slots.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0);
        RefMshr {
            entries: Vec::new(),
            cap,
        }
    }

    /// Record an in-flight fill (the four-rule insert described above).
    pub fn insert(&mut self, line: LineAddr, ready_at: Cycle, now: Cycle) {
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|(l, r)| *l == line && *r > now)
        {
            e.1 = e.1.max(ready_at);
            return;
        }
        if let Some(e) = self.entries.iter_mut().find(|(_, r)| *r <= now) {
            *e = (line, ready_at);
            return;
        }
        if self.entries.len() < self.cap {
            self.entries.push((line, ready_at));
            return;
        }
        if let Some(e) = self.entries.iter_mut().min_by_key(|(_, r)| *r) {
            *e = (line, ready_at);
        }
    }

    /// Completion cycle of a live in-flight fill of `line`, if any.
    pub fn ready_at(&self, line: LineAddr, now: Cycle) -> Option<Cycle> {
        self.entries
            .iter()
            .find(|(l, r)| *l == line && *r > now)
            .map(|(_, r)| *r)
    }

    /// Number of live entries at `now`.
    pub fn live(&self, now: Cycle) -> usize {
        self.entries.iter().filter(|(_, r)| *r > now).count()
    }

    /// Live entries at `now`, sorted — the canonical compared state.
    pub fn live_entries(&self, now: Cycle) -> Vec<(LineAddr, Cycle)> {
        let mut v: Vec<_> = self
            .entries
            .iter()
            .filter(|(_, r)| *r > now)
            .copied()
            .collect();
        v.sort();
        v
    }
}

/// Lockstep harness pairing the real [`MshrFile`] with [`RefMshr`].
pub struct MshrHarness {
    cap: usize,
    real: MshrFile,
    oracle: RefMshr,
    /// Latest `now` seen, used to snapshot live state after each step.
    now: Cycle,
}

impl MshrHarness {
    /// Build from a repro/campaign config `{"cap": N}`.
    pub fn from_config(config: &JsonValue) -> Result<Self, String> {
        let cap = config
            .get("cap")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| "mshr config missing or bad cap".to_string())?
            as usize;
        if cap == 0 {
            return Err("mshr cap must be nonzero".into());
        }
        Ok(MshrHarness {
            cap,
            real: MshrFile::new(cap),
            oracle: RefMshr::new(cap),
            now: 0,
        })
    }
}

impl Harness for MshrHarness {
    fn kind(&self) -> &'static str {
        "mshr"
    }

    fn config(&self) -> JsonValue {
        event::obj(&[("cap", (self.cap as u64).to_json())])
    }

    fn reset(&mut self) {
        self.real = MshrFile::new(self.cap);
        self.oracle = RefMshr::new(self.cap);
        self.now = 0;
    }

    fn step(&mut self, e: &JsonValue) -> Result<(), String> {
        let now = u(e, "now");
        self.now = now;
        match op(e) {
            "insert" => {
                let line = LineAddr(u(e, "line"));
                let ready_at = u(e, "ready_at");
                self.real.insert(line, ready_at, now);
                self.oracle.insert(line, ready_at, now);
            }
            "ready_at" => {
                let line = LineAddr(u(e, "line"));
                let real = self.real.ready_at(line, now);
                let oracle = self.oracle.ready_at(line, now);
                if real != oracle {
                    return Err(format!(
                        "ready_at: real {real:?} vs oracle {oracle:?} for {e}"
                    ));
                }
            }
            "live" => {
                let real = self.real.live(now);
                let oracle = self.oracle.live(now);
                if real != oracle {
                    return Err(format!("live: real {real} vs oracle {oracle} for {e}"));
                }
            }
            other => panic!("mshr harness: unknown op `{other}` in {e}"),
        }
        let real_live = self.real.live_entries(self.now);
        let oracle_live = self.oracle.live_entries(self.now);
        if real_live != oracle_live {
            return Err(format!(
                "live entries diverged at now={}: real {real_live:?} vs oracle {oracle_live:?}",
                self.now
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_keeps_later_completion() {
        let mut m = RefMshr::new(4);
        m.insert(LineAddr(1), 100, 0);
        m.insert(LineAddr(1), 80, 0);
        assert_eq!(m.ready_at(LineAddr(1), 0), Some(100));
        assert_eq!(m.live(0), 1);
    }

    #[test]
    fn full_file_replaces_first_soonest() {
        let mut m = RefMshr::new(2);
        m.insert(LineAddr(1), 100, 0);
        m.insert(LineAddr(2), 100, 0);
        // Tie on ready_at: the FIRST minimal slot (line 1) is replaced,
        // matching `Iterator::min_by_key` on the real structure.
        m.insert(LineAddr(3), 300, 0);
        assert_eq!(m.ready_at(LineAddr(1), 0), None);
        assert_eq!(m.ready_at(LineAddr(2), 0), Some(100));
    }

    #[test]
    fn expired_slot_recycled_before_growth() {
        let mut m = RefMshr::new(2);
        m.insert(LineAddr(1), 10, 0);
        m.insert(LineAddr(2), 40, 0);
        m.insert(LineAddr(3), 50, 20);
        assert_eq!(m.live(20), 2);
        assert_eq!(m.ready_at(LineAddr(3), 20), Some(50));
    }
}
