//! Delta-minimization of diverging event streams.
//!
//! The vendored proptest fork does no shrinking, so the campaign does its
//! own: a ddmin-style chunk remover over the event prefix. The criterion is
//! "the stream still diverges *somewhere*" — not "at the same step" — which
//! keeps removals compositional (dropping an event usually shifts where the
//! structures disagree, but any disagreement is the same underlying bug
//! surfaced earlier).
//!
//! The result is typically a handful of events: the fills/trainings that set
//! up the divergent state plus the one probe/lookup that exposes it.

use crate::lockstep::run_lockstep;
use crate::Harness;
use ppf_types::JsonValue;

/// Truncate `events` to the shortest prefix that still diverges (the
/// divergent step is by definition the last event that matters).
fn truncate_to_failure(harness: &mut dyn Harness, events: &mut Vec<JsonValue>) -> bool {
    match run_lockstep(harness, events) {
        Some(d) => {
            events.truncate(d.step + 1);
            true
        }
        None => false,
    }
}

/// Minimize a diverging event stream: returns the smallest stream the
/// chunked-removal pass converges to. If `events` does not actually diverge
/// under `harness`, it is returned unchanged.
pub fn minimize(harness: &mut dyn Harness, events: &[JsonValue]) -> Vec<JsonValue> {
    let mut best = events.to_vec();
    if !truncate_to_failure(harness, &mut best) {
        return best;
    }
    // Chunked removal with halving chunk size (ddmin): try deleting each
    // aligned chunk; on success restart at that position with the shorter
    // stream and re-truncate to the (possibly earlier) new failure point.
    let mut chunk = (best.len() / 2).max(1);
    loop {
        let mut start = 0;
        let mut removed_any = false;
        while start < best.len() {
            let end = (start + chunk).min(best.len());
            let mut candidate: Vec<JsonValue> = best[..start].to_vec();
            candidate.extend_from_slice(&best[end..]);
            if !candidate.is_empty() && truncate_to_failure(harness, &mut candidate) {
                best = candidate;
                removed_any = true;
                // Do not advance: the chunk now at `start` is new material.
            } else {
                start += chunk;
            }
        }
        if chunk == 1 {
            if !removed_any {
                break;
            }
            // A successful single-event removal can unlock others; sweep
            // again at chunk size 1 until a full pass removes nothing.
        } else {
            chunk = (chunk / 2).max(1);
        }
    }
    best
}
