//! Untimed reference model of the pollution filter (§4 of the paper).
//!
//! The real [`PollutionFilter`] packs its counters into boxed slices with
//! masked indexing, shares code between the PA/PC/split/hybrid layouts, and
//! keeps a direct-mapped reject log for misprediction recovery. The oracle
//! re-derives the same semantics with the most naive storage possible —
//! plain `Vec<Vec<u8>>` counter arrays and modulo indexing — straight from
//! the spec:
//!
//! * 2-bit (configurable-width) saturating counters, weakly-good init, good
//!   when strictly above the mid-point (bimodal predictor rules).
//! * PA keys are the XOR-folded line address; PC keys the folded,
//!   alignment-stripped trigger PC.
//! * Eviction feedback trains the counter the prefetch hashed to with the
//!   line's RIB; hybrid trains both components and the chooser on
//!   disagreement (the tournament rule).
//! * A rejected target recorded in the reject log recovers (trains good)
//!   when a demand miss to it arrives within the freshness window.
//! * The hardened variants (DESIGN.md §12): a nonzero `hash_salt` keys the
//!   fold through per-half affine permutations (re-derived here, not
//!   imported), tag-mixed per tenant; `tenant_partitions > 1` confines
//!   each tenant to its own slice of every table.
//!
//! The adaptive gate is deliberately **not** modelled: campaigns run with
//! `adaptive_accuracy_threshold = None` and the harness refuses gated
//! configs, keeping the oracle a model of the paper mechanism only.

use crate::event::{obj, op, s, u, u_or};
use crate::Harness;
use ppf_filter::{FilterStats, PollutionFilter};
use ppf_types::{
    CounterInit, FilterConfig, FilterKind, FromJson, JsonValue, LineAddr, PrefetchOrigin,
    PrefetchRequest, PrefetchSource, ToJson, MAX_TENANTS,
};

/// Mirror of the real reject-log geometry (`ppf_filter::recovery`).
const REJECT_LOG_ENTRIES: usize = 4096;

/// Mirror of the tenant tag-mix constant (DESIGN.md §12): a nonzero salt is
/// XORed with `tenant * TENANT_TAG_MIX` so each tenant indexes through its
/// own keyed permutation.
const TENANT_TAG_MIX: u64 = 0x9e37_79b9_7f4a_7c15;

/// XOR-fold to 16 bits, re-derived from the spec (not imported from the
/// implementation under test).
fn fold16(v: u64) -> u64 {
    (v ^ (v >> 16) ^ (v >> 32) ^ (v >> 48)) & 0xffff
}

/// SplitMix64 finalizer — the salted fold's key-expansion step, re-derived
/// from DESIGN.md §12.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Salt-keyed affine permutation of one 16-bit half: `(x ^ a) * m + b`
/// modulo 2^16, multiplier forced odd.
fn scramble16(half: u64, key: u64) -> u64 {
    let a = key & 0xffff;
    let m = (key >> 16) | 1;
    let b = key >> 48;
    ((half ^ a).wrapping_mul(m)).wrapping_add(b) & 0xffff
}

/// Keyed fold: each 16-bit half through its own salt-derived permutation,
/// then XOR. Salt 0 is the plain [`fold16`].
fn fold16_salted(v: u64, salt: u64) -> u64 {
    if salt == 0 {
        return fold16(v);
    }
    scramble16(v & 0xffff, mix64(salt ^ 0x9e37_79b9_7f4a_7c15))
        ^ scramble16((v >> 16) & 0xffff, mix64(salt ^ 0xd1b5_4a32_d192_ed03))
        ^ scramble16((v >> 32) & 0xffff, mix64(salt ^ 0x8cb9_2ba7_2f3d_8dd7))
        ^ scramble16(v >> 48, mix64(salt ^ 0x52db_cc63_35f6_11c9))
}

fn pa_key(line: LineAddr, salt: u64) -> u64 {
    fold16_salted(line.0, salt)
}

fn pc_key(pc: u64, salt: u64) -> u64 {
    fold16_salted(pc >> 2, salt)
}

/// Largest power of two `<= n` (`n >= 1`), written the slow obvious way.
fn pow2_floor(n: usize) -> usize {
    let mut p = 1;
    while p * 2 <= n {
        p *= 2;
    }
    p
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Rejection {
    line: LineAddr,
    key: u64,
    table: usize,
    tenant: u8,
    stamp: u64,
}

/// Naive reference filter: counter vectors plus a flat reject log.
#[derive(Debug, Clone)]
pub struct RefFilter {
    kind: FilterKind,
    tables: Vec<Vec<u8>>,
    chooser: Option<Vec<u8>>,
    max: u8,
    threshold: u8,
    reject: Option<Vec<Option<Rejection>>>,
    window: u64,
    salt: u64,
    partitions: usize,
    stats: FilterStats,
}

impl RefFilter {
    /// Build the reference model for `cfg`. Refuses configurations the
    /// oracle does not model (the adaptive gate).
    pub fn new(cfg: &FilterConfig) -> Result<Self, String> {
        if cfg.adaptive_accuracy_threshold.is_some() {
            return Err("oracle does not model the adaptive gate".into());
        }
        let max: u8 = if cfg.counter_bits >= 8 {
            u8::MAX
        } else {
            (1u8 << cfg.counter_bits) - 1
        };
        let init = match cfg.counter_init {
            CounterInit::WeaklyGood => max / 2 + 1,
            CounterInit::StronglyGood => max,
            CounterInit::WeaklyBad => max / 2,
        };
        let table = |entries: usize| vec![init; entries];
        let (tables, chooser) = match (cfg.kind, cfg.split_by_source) {
            (FilterKind::Hybrid, _) => {
                let per = pow2_floor(cfg.table_entries / 4).max(64);
                (
                    vec![table(per), table(per)],
                    Some(table(pow2_floor(cfg.table_entries / 2).max(64))),
                )
            }
            (_, true) => {
                let per = pow2_floor(cfg.table_entries / PrefetchSource::COUNT).max(64);
                (
                    (0..PrefetchSource::COUNT).map(|_| table(per)).collect(),
                    None,
                )
            }
            _ => (vec![table(cfg.table_entries)], None),
        };
        Ok(RefFilter {
            kind: cfg.kind,
            tables,
            chooser,
            max,
            threshold: max / 2,
            reject: (cfg.kind != FilterKind::None && cfg.recovery_window > 0)
                .then(|| vec![None; REJECT_LOG_ENTRIES]),
            window: cfg.recovery_window,
            salt: cfg.hash_salt,
            partitions: cfg.tenant_partitions.clamp(1, MAX_TENANTS),
            stats: FilterStats::default(),
        })
    }

    /// The salt a lookup from `tenant` hashes with: the configured salt with
    /// the tenant ID tag-mixed in; identity when salting is off.
    fn effective_salt(&self, tenant: u8) -> u64 {
        if self.salt == 0 {
            0
        } else {
            self.salt ^ (tenant as u64).wrapping_mul(TENANT_TAG_MIX)
        }
    }

    /// Partitioned slot: tenant `t` owns the `t % P` region of `len / P`
    /// consecutive counters and `key` indexes within it. `P = 1` degenerates
    /// to plain `key % len`.
    fn slot(&self, len: usize, key: u64, tenant: u8) -> usize {
        let region = len / self.partitions;
        (tenant as usize % self.partitions) * region + (key as usize) % region
    }

    fn predicts_good(&self, table: usize, key: u64, tenant: u8) -> bool {
        let t = &self.tables[table];
        t[self.slot(t.len(), key, tenant)] > self.threshold
    }

    fn train(&mut self, table: usize, key: u64, tenant: u8, good: bool) {
        let max = self.max;
        let slot = self.slot(self.tables[table].len(), key, tenant);
        let t = &mut self.tables[table];
        t[slot] = if good {
            t[slot].saturating_add(1).min(max)
        } else {
            t[slot].saturating_sub(1)
        };
    }

    fn table_for(&self, source: PrefetchSource) -> usize {
        if self.tables.len() > 1 {
            source.index()
        } else {
            0
        }
    }

    /// The `(decision key, table)` a non-hybrid lookup or training event
    /// resolves to; `None` only for `FilterKind::None`.
    fn flat_key(
        &self,
        line: LineAddr,
        pc: u64,
        source: PrefetchSource,
        tenant: u8,
    ) -> Option<(u64, usize)> {
        let salt = self.effective_salt(tenant);
        match self.kind {
            FilterKind::None | FilterKind::Hybrid => None,
            FilterKind::Pa => Some((pa_key(line, salt), self.table_for(source))),
            FilterKind::Pc => Some((pc_key(pc, salt), self.table_for(source))),
        }
    }

    /// Hybrid lookup: the chooser (PC-indexed) picks which component table
    /// decides.
    fn hybrid_key(&self, line: LineAddr, pc: u64, tenant: u8) -> (u64, usize) {
        let salt = self.effective_salt(tenant);
        let pck = pc_key(pc, salt);
        let trust_pc = match &self.chooser {
            Some(c) => c[self.slot(c.len(), pck, tenant)] > self.threshold,
            None => false,
        };
        if trust_pc {
            (pck, 1)
        } else {
            (pa_key(line, salt), 0)
        }
    }

    /// Mirror of [`PollutionFilter::should_prefetch`].
    pub fn lookup(
        &mut self,
        line: LineAddr,
        pc: u64,
        source: PrefetchSource,
        tenant: u8,
        now: u64,
    ) -> bool {
        let (key, table) = match self.kind {
            FilterKind::None => {
                self.stats.allowed += 1;
                return true;
            }
            FilterKind::Hybrid => self.hybrid_key(line, pc, tenant),
            _ => self.flat_key(line, pc, source, tenant).expect("flat kind"),
        };
        let good = self.predicts_good(table, key, tenant);
        if good {
            self.stats.allowed += 1;
        } else {
            self.stats.rejected += 1;
            if let Some(log) = &mut self.reject {
                log[(line.0 as usize) % REJECT_LOG_ENTRIES] = Some(Rejection {
                    line,
                    key,
                    table,
                    tenant,
                    stamp: now,
                });
            }
        }
        good
    }

    /// Mirror of [`PollutionFilter::on_eviction`].
    pub fn evict(
        &mut self,
        line: LineAddr,
        pc: u64,
        source: PrefetchSource,
        tenant: u8,
        referenced: bool,
    ) {
        if referenced {
            self.stats.trained_good += 1;
        } else {
            self.stats.trained_bad += 1;
        }
        if self.kind == FilterKind::Hybrid {
            let salt = self.effective_salt(tenant);
            let (pak, pck) = (pa_key(line, salt), pc_key(pc, salt));
            let pa_right = self.predicts_good(0, pak, tenant) == referenced;
            let pc_right = self.predicts_good(1, pck, tenant) == referenced;
            self.train(0, pak, tenant, referenced);
            self.train(1, pck, tenant, referenced);
            if pa_right != pc_right {
                let slot = self
                    .chooser
                    .as_ref()
                    .map(|c| self.slot(c.len(), pck, tenant));
                if let (Some(c), Some(slot)) = (&mut self.chooser, slot) {
                    c[slot] = if pc_right {
                        c[slot].saturating_add(1).min(self.max)
                    } else {
                        c[slot].saturating_sub(1)
                    };
                }
            }
        } else if let Some((key, table)) = self.flat_key(line, pc, source, tenant) {
            self.train(table, key, tenant, referenced);
        }
    }

    /// Mirror of [`PollutionFilter::on_demand_miss`]. The recovering train
    /// goes to the tenant recorded with the rejection, not the missing
    /// request's — the log remembers whose counter vetoed.
    pub fn demand_miss(&mut self, line: LineAddr, now: u64) {
        let Some(log) = &mut self.reject else {
            return;
        };
        let slot = (line.0 as usize) % REJECT_LOG_ENTRIES;
        match log[slot] {
            Some(r) if r.line == line => {
                log[slot] = None;
                if now.saturating_sub(r.stamp) <= self.window {
                    self.stats.recovered += 1;
                    self.train(r.table, r.key, r.tenant, true);
                }
            }
            _ => {}
        }
    }

    /// Component-table counter arrays (compared against
    /// [`PollutionFilter::counter_snapshot`]).
    pub fn counters(&self) -> &[Vec<u8>] {
        &self.tables
    }

    /// Chooser counter array, for hybrid configs.
    pub fn chooser(&self) -> Option<&[u8]> {
        self.chooser.as_deref()
    }

    /// Statistics accumulated by the model.
    pub fn stats(&self) -> FilterStats {
        self.stats
    }
}

/// Lockstep harness pairing the real [`PollutionFilter`] with [`RefFilter`].
pub struct FilterHarness {
    cfg: FilterConfig,
    real: PollutionFilter,
    oracle: RefFilter,
}

impl FilterHarness {
    /// Build from a repro/campaign config — a full [`FilterConfig`] JSON
    /// object (the same shape `figures --json` emits).
    pub fn from_config(config: &JsonValue) -> Result<Self, String> {
        let cfg = FilterConfig::from_json(config)?;
        Ok(FilterHarness {
            real: PollutionFilter::new(&cfg),
            oracle: RefFilter::new(&cfg)?,
            cfg,
        })
    }

    fn check_state(&self) -> Result<(), String> {
        let real_tables = self.real.counter_snapshot();
        if real_tables != self.oracle.tables {
            return Err(format!(
                "counter tables diverged: real {real_tables:?} vs oracle {:?}",
                self.oracle.tables
            ));
        }
        let real_chooser = self.real.chooser_snapshot();
        if real_chooser.as_deref() != self.oracle.chooser() {
            return Err(format!(
                "chooser diverged: real {real_chooser:?} vs oracle {:?}",
                self.oracle.chooser()
            ));
        }
        if *self.real.stats() != self.oracle.stats {
            return Err(format!(
                "stats diverged: real {:?} vs oracle {:?}",
                self.real.stats(),
                self.oracle.stats
            ));
        }
        Ok(())
    }
}

impl Harness for FilterHarness {
    fn kind(&self) -> &'static str {
        "filter"
    }

    fn config(&self) -> JsonValue {
        self.cfg.to_json()
    }

    fn reset(&mut self) {
        self.real = PollutionFilter::new(&self.cfg);
        self.oracle = RefFilter::new(&self.cfg).expect("config already accepted");
    }

    fn step(&mut self, event: &JsonValue) -> Result<(), String> {
        let line = LineAddr(u(event, "line"));
        // Lenient: repros committed before multi-tenant hardening carry no
        // tenant field and replay with the pre-extension semantics.
        let tenant = u_or(event, "tenant", 0) as u8;
        match op(event) {
            "lookup" => {
                let pc = u(event, "pc");
                let source = source_of(event);
                let now = u(event, "now");
                let req = PrefetchRequest {
                    line,
                    trigger_pc: pc,
                    source,
                    tenant,
                };
                let real = self.real.should_prefetch(&req, now);
                let oracle = self.oracle.lookup(line, pc, source, tenant, now);
                if real != oracle {
                    return Err(format!(
                        "lookup decision: real {real} vs oracle {oracle} for {event}"
                    ));
                }
            }
            "evict" => {
                let pc = u(event, "pc");
                let source = source_of(event);
                let referenced = crate::event::b(event, "referenced");
                let origin = PrefetchOrigin {
                    line,
                    trigger_pc: pc,
                    source,
                    tenant,
                };
                self.real.on_eviction(&origin, referenced);
                self.oracle.evict(line, pc, source, tenant, referenced);
            }
            "demand_miss" => {
                let now = u(event, "now");
                self.real.on_demand_miss(line, now);
                self.oracle.demand_miss(line, now);
            }
            other => panic!("filter harness: unknown op `{other}` in {event}"),
        }
        self.check_state()
    }
}

fn source_of(e: &JsonValue) -> PrefetchSource {
    PrefetchSource::from_json(&JsonValue::Str(s(e, "source").to_string()))
        .unwrap_or_else(|err| panic!("bad prefetch source in {e}: {err}"))
}

/// Build a lookup event (shared with the sim tap replay in tests).
pub fn lookup_event(
    line: LineAddr,
    pc: u64,
    source: PrefetchSource,
    tenant: u8,
    now: u64,
) -> JsonValue {
    obj(&[
        ("op", JsonValue::Str("lookup".into())),
        ("line", line.0.to_json()),
        ("pc", pc.to_json()),
        ("source", source.to_json()),
        ("tenant", (tenant as u64).to_json()),
        ("now", now.to_json()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(kind: FilterKind) -> FilterConfig {
        FilterConfig {
            kind,
            ..FilterConfig::default()
        }
    }

    #[test]
    fn weakly_good_first_touch_passes() {
        let mut f = RefFilter::new(&cfg(FilterKind::Pa)).unwrap();
        assert!(f.lookup(LineAddr(5), 0x100, PrefetchSource::Nsp, 0, 0));
    }

    #[test]
    fn two_bad_outcomes_reject_then_recovery_trains_back() {
        let mut f = RefFilter::new(&cfg(FilterKind::Pa)).unwrap();
        let l = LineAddr(5);
        f.evict(l, 0x100, PrefetchSource::Nsp, 0, false);
        f.evict(l, 0x100, PrefetchSource::Nsp, 0, false);
        assert!(!f.lookup(l, 0x100, PrefetchSource::Nsp, 0, 10));
        f.demand_miss(l, 20);
        assert_eq!(f.stats().recovered, 1);
    }

    #[test]
    fn stale_recovery_is_dropped() {
        let mut f = RefFilter::new(&cfg(FilterKind::Pa)).unwrap();
        let l = LineAddr(5);
        f.evict(l, 0x100, PrefetchSource::Nsp, 0, false);
        f.evict(l, 0x100, PrefetchSource::Nsp, 0, false);
        assert!(!f.lookup(l, 0x100, PrefetchSource::Nsp, 0, 0));
        f.demand_miss(l, 100_000);
        assert_eq!(f.stats().recovered, 0, "beyond the freshness window");
    }

    #[test]
    fn salted_fold_matches_the_real_hash() {
        // The oracle re-derives the keyed fold from DESIGN.md §12; it must
        // land on the same 16-bit keys as `ppf_filter::hash` for every salt.
        for salt in [0u64, 1, 0x5eed_cafe_f00d_d00d, u64::MAX] {
            for v in [0u64, 5, 0xdead_beef, 0x1234_5678_9abc_def0, u64::MAX] {
                assert_eq!(
                    fold16_salted(v, salt),
                    ppf_filter::hash::fold16_salted(v, salt),
                    "salt {salt:#x} value {v:#x}"
                );
            }
        }
    }

    #[test]
    fn partitioned_filter_isolates_tenants() {
        let mut c = cfg(FilterKind::Pa);
        c.tenant_partitions = 4;
        let mut f = RefFilter::new(&c).unwrap();
        let l = LineAddr(5);
        // Tenant 1 poisons its counter for the line...
        f.evict(l, 0x100, PrefetchSource::Nsp, 1, false);
        f.evict(l, 0x100, PrefetchSource::Nsp, 1, false);
        assert!(!f.lookup(l, 0x100, PrefetchSource::Nsp, 1, 0));
        // ...and every other tenant's view of the same line is untouched.
        for victim in [0u8, 2, 3] {
            assert!(f.lookup(l, 0x100, PrefetchSource::Nsp, victim, 0));
        }
    }

    #[test]
    fn tag_mixed_salt_separates_tenant_keys() {
        // With a nonzero salt, the same line hashes to different keys for
        // different tenants even in a shared (P=1) table.
        let mut c = cfg(FilterKind::Pa);
        c.hash_salt = 0x5eed_cafe_f00d_d00d;
        let f = RefFilter::new(&c).unwrap();
        let k0 = pa_key(LineAddr(5), f.effective_salt(0));
        let k1 = pa_key(LineAddr(5), f.effective_salt(1));
        assert_ne!(k0, k1, "tenants must index through distinct permutations");
    }

    #[test]
    fn hybrid_geometry_matches_real_budget_split() {
        let c = cfg(FilterKind::Hybrid);
        let f = RefFilter::new(&c).unwrap();
        let real = PollutionFilter::new(&c);
        assert_eq!(f.counters()[0].len(), real.table_entries());
        assert_eq!(f.chooser().map(<[u8]>::len), real.chooser_entries());
    }

    #[test]
    fn gated_config_is_refused() {
        let mut c = cfg(FilterKind::Pa);
        c.adaptive_accuracy_threshold = Some(0.5);
        assert!(RefFilter::new(&c).is_err());
    }
}
