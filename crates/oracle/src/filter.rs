//! Untimed reference model of the pollution filter (§4 of the paper).
//!
//! The real [`PollutionFilter`] packs its counters into boxed slices with
//! masked indexing, shares code between the PA/PC/split/hybrid layouts, and
//! keeps a direct-mapped reject log for misprediction recovery. The oracle
//! re-derives the same semantics with the most naive storage possible —
//! plain `Vec<Vec<u8>>` counter arrays and modulo indexing — straight from
//! the spec:
//!
//! * 2-bit (configurable-width) saturating counters, weakly-good init, good
//!   when strictly above the mid-point (bimodal predictor rules).
//! * PA keys are the XOR-folded line address; PC keys the folded,
//!   alignment-stripped trigger PC.
//! * Eviction feedback trains the counter the prefetch hashed to with the
//!   line's RIB; hybrid trains both components and the chooser on
//!   disagreement (the tournament rule).
//! * A rejected target recorded in the reject log recovers (trains good)
//!   when a demand miss to it arrives within the freshness window.
//! * The hardened variants (DESIGN.md §12): a nonzero `hash_salt` keys the
//!   fold through per-half affine permutations (re-derived here, not
//!   imported), tag-mixed per tenant; `tenant_partitions > 1` confines
//!   each tenant to its own slice of every table.
//! * The hashed perceptron (DESIGN.md §15): five signed weight tables
//!   indexed by the folded PC, line, page offset, clamped depth, and the
//!   global-accuracy bucket; admit when the weight sum reaches the
//!   threshold; unit-step training clamped at ±15. [`RefPerceptron`]
//!   re-derives the geometry (budget split, fixed feature tables) and the
//!   decision/training rules from the spec with plain `Vec<Vec<i8>>`
//!   storage and modulo indexing.
//!
//! The adaptive gate is deliberately **not** modelled: campaigns run with
//! `adaptive_accuracy_threshold = None` and the harness refuses gated
//! configs, keeping the oracle a model of the paper mechanism only.

use crate::event::{obj, op, s, u, u_or};
use crate::Harness;
use ppf_filter::{FilterStats, PollutionFilter};
use ppf_types::{
    CounterInit, FilterConfig, FilterKind, FromJson, JsonValue, LineAddr, PrefetchOrigin,
    PrefetchRequest, PrefetchSource, ToJson, MAX_TENANTS,
};

/// Mirror of the real reject-log geometry (`ppf_filter::recovery`).
const REJECT_LOG_ENTRIES: usize = 4096;

/// Mirror of the tenant tag-mix constant (DESIGN.md §12): a nonzero salt is
/// XORed with `tenant * TENANT_TAG_MIX` so each tenant indexes through its
/// own keyed permutation.
const TENANT_TAG_MIX: u64 = 0x9e37_79b9_7f4a_7c15;

/// XOR-fold to 16 bits, re-derived from the spec (not imported from the
/// implementation under test).
fn fold16(v: u64) -> u64 {
    (v ^ (v >> 16) ^ (v >> 32) ^ (v >> 48)) & 0xffff
}

/// SplitMix64 finalizer — the salted fold's key-expansion step, re-derived
/// from DESIGN.md §12.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Salt-keyed affine permutation of one 16-bit half: `(x ^ a) * m + b`
/// modulo 2^16, multiplier forced odd.
fn scramble16(half: u64, key: u64) -> u64 {
    let a = key & 0xffff;
    let m = (key >> 16) | 1;
    let b = key >> 48;
    ((half ^ a).wrapping_mul(m)).wrapping_add(b) & 0xffff
}

/// Keyed fold: each 16-bit half through its own salt-derived permutation,
/// then XOR. Salt 0 is the plain [`fold16`].
fn fold16_salted(v: u64, salt: u64) -> u64 {
    if salt == 0 {
        return fold16(v);
    }
    scramble16(v & 0xffff, mix64(salt ^ 0x9e37_79b9_7f4a_7c15))
        ^ scramble16((v >> 16) & 0xffff, mix64(salt ^ 0xd1b5_4a32_d192_ed03))
        ^ scramble16((v >> 32) & 0xffff, mix64(salt ^ 0x8cb9_2ba7_2f3d_8dd7))
        ^ scramble16(v >> 48, mix64(salt ^ 0x52db_cc63_35f6_11c9))
}

fn pa_key(line: LineAddr, salt: u64) -> u64 {
    fold16_salted(line.0, salt)
}

fn pc_key(pc: u64, salt: u64) -> u64 {
    fold16_salted(pc >> 2, salt)
}

/// Largest power of two `<= n` (`n >= 1`), written the slow obvious way.
fn pow2_floor(n: usize) -> usize {
    let mut p = 1;
    while p * 2 <= n {
        p *= 2;
    }
    p
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Rejection {
    line: LineAddr,
    key: u64,
    table: usize,
    tenant: u8,
    stamp: u64,
}

/// Perceptron spec constants, re-derived from DESIGN.md §15 (not imported
/// from `ppf_filter::perceptron`).
const PERC_FEATURES: usize = 5;
const PERC_WEIGHT_BITS: usize = 5;
const PERC_WEIGHT_MAX: i8 = 15;
const PERC_THRESHOLD: i32 = -2;
/// Positive-side training margin (mirrors `perceptron::TRAIN_MARGIN`).
const PERC_TRAIN_MARGIN: i32 = 2;
const PERC_MAX_DEPTH: u64 = 15;
const PERC_ACC_BUCKETS: u64 = 8;

/// The global-accuracy bucket (feature 4) for the filter's lifetime
/// training counts; the top bucket when untrained.
fn perc_bucket(trained_good: u64, trained_bad: u64) -> u64 {
    match (trained_good * PERC_ACC_BUCKETS).checked_div(trained_good + trained_bad) {
        None => PERC_ACC_BUCKETS - 1,
        Some(scaled) => scaled.min(PERC_ACC_BUCKETS - 1),
    }
}

/// Naive reference model of the hashed-perceptron weight storage: five
/// plain signed vectors, modulo indexing, spelled out feature by feature.
#[derive(Debug, Clone)]
pub struct RefPerceptron {
    /// `weights[f]` holds `rows[f] * partitions` signed weights.
    weights: Vec<Vec<i8>>,
    /// Per-partition region size of each feature table.
    rows: Vec<usize>,
    partitions: usize,
}

impl RefPerceptron {
    fn new(cfg: &FilterConfig, partitions: usize) -> Self {
        // Budget split per the spec: the whole structure fits in the
        // `table_entries x counter_bits` bit budget at 5 bits a weight; the
        // bounded features (page offset / depth / accuracy) take 64/16/8
        // rows, the line feature takes the largest power of two at most
        // half the remainder, the PC feature the largest power of two in
        // what is left, both floored at 16 rows.
        let slots = cfg.table_entries * cfg.counter_bits as usize / PERC_WEIGHT_BITS;
        let fixed = 64 + 16 + 8;
        let free = slots.saturating_sub(fixed);
        let line_rows = pow2_floor(free / 2).max(16);
        let pc_rows = pow2_floor(free.saturating_sub(line_rows)).max(16);
        let total = [pc_rows, line_rows, 64, 16, 8];
        let w0: i8 = match cfg.counter_init {
            CounterInit::WeaklyGood => 0,
            CounterInit::StronglyGood => 1,
            CounterInit::WeaklyBad => -1,
        };
        let rows: Vec<usize> = total.iter().map(|&r| (r / partitions).max(1)).collect();
        let weights = rows.iter().map(|&r| vec![w0; r * partitions]).collect();
        RefPerceptron {
            weights,
            rows,
            partitions,
        }
    }

    /// The five feature slots a (line, pc, depth, bucket) event selects for
    /// `tenant` under the effective `salt`.
    fn slots(
        &self,
        line: LineAddr,
        pc: u64,
        depth: u64,
        bucket: u64,
        tenant: u8,
        salt: u64,
    ) -> [usize; PERC_FEATURES] {
        let values = [
            pc >> 2,
            line.0,
            line.0 % 64,
            depth.min(PERC_MAX_DEPTH),
            bucket,
        ];
        let mut out = [0usize; PERC_FEATURES];
        for f in 0..PERC_FEATURES {
            let region = self.rows[f];
            let idx = (fold16_salted(values[f], salt) as usize) % region;
            out[f] = (tenant as usize % self.partitions) * region + idx;
        }
        out
    }

    fn sum(&self, line: LineAddr, pc: u64, depth: u64, bucket: u64, tenant: u8, salt: u64) -> i32 {
        self.slots(line, pc, depth, bucket, tenant, salt)
            .iter()
            .enumerate()
            .map(|(f, &s)| self.weights[f][s] as i32)
            .sum()
    }

    #[allow(clippy::too_many_arguments)]
    fn train(
        &mut self,
        line: LineAddr,
        pc: u64,
        depth: u64,
        bucket: u64,
        tenant: u8,
        salt: u64,
        good: bool,
    ) {
        let slots = self.slots(line, pc, depth, bucket, tenant, salt);
        for (w_table, s) in self.weights.iter_mut().zip(slots) {
            let w = &mut w_table[s];
            *w = if good {
                (*w + 1).min(PERC_WEIGHT_MAX)
            } else {
                (*w - 1).max(-PERC_WEIGHT_MAX)
            };
        }
    }

    /// Recovery training: only the target-specific features (PC, line,
    /// page offset — tables 0..3) move up; shared depth/accuracy weights
    /// stay put (mirrors `Perceptron::recover`).
    fn recover(&mut self, line: LineAddr, pc: u64, depth: u64, bucket: u64, tenant: u8, salt: u64) {
        let slots = self.slots(line, pc, depth, bucket, tenant, salt);
        for (w_table, s) in self.weights.iter_mut().zip(slots).take(3) {
            let w = &mut w_table[s];
            *w = (*w + 1).min(PERC_WEIGHT_MAX);
        }
    }

    /// The raw weight arrays in feature order (compared against
    /// [`PollutionFilter::weight_snapshot`]).
    pub fn weights(&self) -> &[Vec<i8>] {
        &self.weights
    }
}

/// Naive reference filter: counter vectors plus a flat reject log.
#[derive(Debug, Clone)]
pub struct RefFilter {
    kind: FilterKind,
    tables: Vec<Vec<u8>>,
    chooser: Option<Vec<u8>>,
    perceptron: Option<RefPerceptron>,
    max: u8,
    threshold: u8,
    reject: Option<Vec<Option<Rejection>>>,
    window: u64,
    salt: u64,
    partitions: usize,
    stats: FilterStats,
}

impl RefFilter {
    /// Build the reference model for `cfg`. Refuses configurations the
    /// oracle does not model (the adaptive gate).
    pub fn new(cfg: &FilterConfig) -> Result<Self, String> {
        if cfg.adaptive_accuracy_threshold.is_some() {
            return Err("oracle does not model the adaptive gate".into());
        }
        let max: u8 = if cfg.counter_bits >= 8 {
            u8::MAX
        } else {
            (1u8 << cfg.counter_bits) - 1
        };
        let init = match cfg.counter_init {
            CounterInit::WeaklyGood => max / 2 + 1,
            CounterInit::StronglyGood => max,
            CounterInit::WeaklyBad => max / 2,
        };
        let table = |entries: usize| vec![init; entries];
        let (tables, chooser) = match (cfg.kind, cfg.split_by_source) {
            // The perceptron keeps all its state in the weight tables.
            (FilterKind::Perceptron, _) => (Vec::new(), None),
            (FilterKind::Hybrid, _) => {
                let per = pow2_floor(cfg.table_entries / 4).max(64);
                (
                    vec![table(per), table(per)],
                    Some(table(pow2_floor(cfg.table_entries / 2).max(64))),
                )
            }
            (_, true) => {
                let per = pow2_floor(cfg.table_entries / PrefetchSource::COUNT).max(64);
                (
                    (0..PrefetchSource::COUNT).map(|_| table(per)).collect(),
                    None,
                )
            }
            _ => (vec![table(cfg.table_entries)], None),
        };
        let partitions = cfg.tenant_partitions.clamp(1, MAX_TENANTS);
        Ok(RefFilter {
            kind: cfg.kind,
            tables,
            chooser,
            perceptron: (cfg.kind == FilterKind::Perceptron)
                .then(|| RefPerceptron::new(cfg, partitions)),
            max,
            threshold: max / 2,
            reject: (cfg.kind != FilterKind::None && cfg.recovery_window > 0)
                .then(|| vec![None; REJECT_LOG_ENTRIES]),
            window: cfg.recovery_window,
            salt: cfg.hash_salt,
            partitions,
            stats: FilterStats::default(),
        })
    }

    /// The salt a lookup from `tenant` hashes with: the configured salt with
    /// the tenant ID tag-mixed in; identity when salting is off.
    fn effective_salt(&self, tenant: u8) -> u64 {
        if self.salt == 0 {
            0
        } else {
            self.salt ^ (tenant as u64).wrapping_mul(TENANT_TAG_MIX)
        }
    }

    /// Partitioned slot: tenant `t` owns the `t % P` region of `len / P`
    /// consecutive counters and `key` indexes within it. `P = 1` degenerates
    /// to plain `key % len`.
    fn slot(&self, len: usize, key: u64, tenant: u8) -> usize {
        let region = len / self.partitions;
        (tenant as usize % self.partitions) * region + (key as usize) % region
    }

    fn predicts_good(&self, table: usize, key: u64, tenant: u8) -> bool {
        let t = &self.tables[table];
        t[self.slot(t.len(), key, tenant)] > self.threshold
    }

    fn train(&mut self, table: usize, key: u64, tenant: u8, good: bool) {
        let max = self.max;
        let slot = self.slot(self.tables[table].len(), key, tenant);
        let t = &mut self.tables[table];
        t[slot] = if good {
            t[slot].saturating_add(1).min(max)
        } else {
            t[slot].saturating_sub(1)
        };
    }

    fn table_for(&self, source: PrefetchSource) -> usize {
        if self.tables.len() > 1 {
            source.index()
        } else {
            0
        }
    }

    /// The `(decision key, table)` a non-hybrid lookup or training event
    /// resolves to; `None` only for `FilterKind::None`.
    fn flat_key(
        &self,
        line: LineAddr,
        pc: u64,
        source: PrefetchSource,
        tenant: u8,
    ) -> Option<(u64, usize)> {
        let salt = self.effective_salt(tenant);
        match self.kind {
            FilterKind::None | FilterKind::Hybrid | FilterKind::Perceptron => None,
            FilterKind::Pa => Some((pa_key(line, salt), self.table_for(source))),
            FilterKind::Pc => Some((pc_key(pc, salt), self.table_for(source))),
        }
    }

    /// Hybrid lookup: the chooser (PC-indexed) picks which component table
    /// decides.
    fn hybrid_key(&self, line: LineAddr, pc: u64, tenant: u8) -> (u64, usize) {
        let salt = self.effective_salt(tenant);
        let pck = pc_key(pc, salt);
        let trust_pc = match &self.chooser {
            Some(c) => c[self.slot(c.len(), pck, tenant)] > self.threshold,
            None => false,
        };
        if trust_pc {
            (pck, 1)
        } else {
            (pa_key(line, salt), 0)
        }
    }

    /// Mirror of [`PollutionFilter::should_prefetch`]. `depth` feeds the
    /// perceptron's depth feature and is ignored by the counter kinds.
    pub fn lookup(
        &mut self,
        line: LineAddr,
        pc: u64,
        source: PrefetchSource,
        tenant: u8,
        depth: u64,
        now: u64,
    ) -> bool {
        if self.kind == FilterKind::Perceptron {
            let bucket = perc_bucket(self.stats.trained_good, self.stats.trained_bad);
            let salt = self.effective_salt(tenant);
            let good = self
                .perceptron
                .as_ref()
                .map(|p| p.sum(line, pc, depth, bucket, tenant, salt) >= PERC_THRESHOLD)
                .unwrap_or(true);
            if good {
                self.stats.allowed += 1;
            } else {
                self.stats.rejected += 1;
                if let Some(log) = &mut self.reject {
                    // The log slot reuses `key` for the trigger PC and
                    // `table` for the clamped depth — the feature inputs a
                    // recovery train needs.
                    log[(line.0 as usize) % REJECT_LOG_ENTRIES] = Some(Rejection {
                        line,
                        key: pc,
                        table: depth.min(PERC_MAX_DEPTH) as usize,
                        tenant,
                        stamp: now,
                    });
                }
            }
            return good;
        }
        let (key, table) = match self.kind {
            FilterKind::None => {
                self.stats.allowed += 1;
                return true;
            }
            FilterKind::Hybrid => self.hybrid_key(line, pc, tenant),
            _ => self.flat_key(line, pc, source, tenant).expect("flat kind"),
        };
        let good = self.predicts_good(table, key, tenant);
        if good {
            self.stats.allowed += 1;
        } else {
            self.stats.rejected += 1;
            if let Some(log) = &mut self.reject {
                log[(line.0 as usize) % REJECT_LOG_ENTRIES] = Some(Rejection {
                    line,
                    key,
                    table,
                    tenant,
                    stamp: now,
                });
            }
        }
        good
    }

    /// Mirror of [`PollutionFilter::on_eviction`]. `depth` feeds the
    /// perceptron's depth feature and is ignored by the counter kinds.
    pub fn evict(
        &mut self,
        line: LineAddr,
        pc: u64,
        source: PrefetchSource,
        tenant: u8,
        depth: u64,
        referenced: bool,
    ) {
        if referenced {
            self.stats.trained_good += 1;
        } else {
            self.stats.trained_bad += 1;
        }
        if self.kind == FilterKind::Perceptron {
            // Ordering contract with the real filter: the stats bump above
            // comes first, so feature 4 hashes with a bucket that already
            // includes this event.
            let bucket = perc_bucket(self.stats.trained_good, self.stats.trained_bad);
            let salt = self.effective_salt(tenant);
            if let Some(p) = &mut self.perceptron {
                // Positive-side margin gate, mirroring the real filter:
                // good outcomes only train while the sum sits within the
                // margin band above the threshold; bad always trains.
                if !referenced
                    || p.sum(line, pc, depth, bucket, tenant, salt)
                        <= PERC_THRESHOLD + PERC_TRAIN_MARGIN
                {
                    p.train(line, pc, depth, bucket, tenant, salt, referenced);
                }
            }
        } else if self.kind == FilterKind::Hybrid {
            let salt = self.effective_salt(tenant);
            let (pak, pck) = (pa_key(line, salt), pc_key(pc, salt));
            let pa_right = self.predicts_good(0, pak, tenant) == referenced;
            let pc_right = self.predicts_good(1, pck, tenant) == referenced;
            self.train(0, pak, tenant, referenced);
            self.train(1, pck, tenant, referenced);
            if pa_right != pc_right {
                let slot = self
                    .chooser
                    .as_ref()
                    .map(|c| self.slot(c.len(), pck, tenant));
                if let (Some(c), Some(slot)) = (&mut self.chooser, slot) {
                    c[slot] = if pc_right {
                        c[slot].saturating_add(1).min(self.max)
                    } else {
                        c[slot].saturating_sub(1)
                    };
                }
            }
        } else if let Some((key, table)) = self.flat_key(line, pc, source, tenant) {
            self.train(table, key, tenant, referenced);
        }
    }

    /// Mirror of [`PollutionFilter::on_demand_miss`]. The recovering train
    /// goes to the tenant recorded with the rejection, not the missing
    /// request's — the log remembers whose counter vetoed.
    pub fn demand_miss(&mut self, line: LineAddr, now: u64) {
        let Some(log) = &mut self.reject else {
            return;
        };
        let slot = (line.0 as usize) % REJECT_LOG_ENTRIES;
        match log[slot] {
            Some(r) if r.line == line => {
                log[slot] = None;
                if now.saturating_sub(r.stamp) <= self.window {
                    self.stats.recovered += 1;
                    if self.kind == FilterKind::Perceptron {
                        // Rebuild the rejected feature vector (`key` = PC,
                        // `table` = clamped depth); only the target
                        // features get the recovery step.
                        let bucket = perc_bucket(self.stats.trained_good, self.stats.trained_bad);
                        let salt = self.effective_salt(r.tenant);
                        if let Some(p) = &mut self.perceptron {
                            p.recover(r.line, r.key, r.table as u64, bucket, r.tenant, salt);
                        }
                    } else {
                        self.train(r.table, r.key, r.tenant, true);
                    }
                }
            }
            _ => {}
        }
    }

    /// Component-table counter arrays (compared against
    /// [`PollutionFilter::counter_snapshot`]).
    pub fn counters(&self) -> &[Vec<u8>] {
        &self.tables
    }

    /// Chooser counter array, for hybrid configs.
    pub fn chooser(&self) -> Option<&[u8]> {
        self.chooser.as_deref()
    }

    /// Perceptron weight arrays, for perceptron configs (compared against
    /// [`PollutionFilter::weight_snapshot`]).
    pub fn perceptron_weights(&self) -> Option<&[Vec<i8>]> {
        self.perceptron.as_ref().map(RefPerceptron::weights)
    }

    /// Statistics accumulated by the model.
    pub fn stats(&self) -> FilterStats {
        self.stats
    }
}

/// Lockstep harness pairing the real [`PollutionFilter`] with [`RefFilter`].
pub struct FilterHarness {
    cfg: FilterConfig,
    real: PollutionFilter,
    oracle: RefFilter,
}

impl FilterHarness {
    /// Build from a repro/campaign config — a full [`FilterConfig`] JSON
    /// object (the same shape `figures --json` emits).
    pub fn from_config(config: &JsonValue) -> Result<Self, String> {
        let cfg = FilterConfig::from_json(config)?;
        Ok(FilterHarness {
            real: PollutionFilter::new(&cfg),
            oracle: RefFilter::new(&cfg)?,
            cfg,
        })
    }

    fn check_state(&self) -> Result<(), String> {
        let real_tables = self.real.counter_snapshot();
        if real_tables != self.oracle.tables {
            return Err(format!(
                "counter tables diverged: real {real_tables:?} vs oracle {:?}",
                self.oracle.tables
            ));
        }
        let real_chooser = self.real.chooser_snapshot();
        if real_chooser.as_deref() != self.oracle.chooser() {
            return Err(format!(
                "chooser diverged: real {real_chooser:?} vs oracle {:?}",
                self.oracle.chooser()
            ));
        }
        let real_weights = self.real.weight_snapshot();
        if real_weights.as_deref() != self.oracle.perceptron_weights() {
            return Err(format!(
                "perceptron weights diverged: real {real_weights:?} vs oracle {:?}",
                self.oracle.perceptron_weights()
            ));
        }
        if *self.real.stats() != self.oracle.stats {
            return Err(format!(
                "stats diverged: real {:?} vs oracle {:?}",
                self.real.stats(),
                self.oracle.stats
            ));
        }
        Ok(())
    }
}

impl Harness for FilterHarness {
    fn kind(&self) -> &'static str {
        "filter"
    }

    fn config(&self) -> JsonValue {
        self.cfg.to_json()
    }

    fn reset(&mut self) {
        self.real = PollutionFilter::new(&self.cfg);
        self.oracle = RefFilter::new(&self.cfg).expect("config already accepted");
    }

    fn step(&mut self, event: &JsonValue) -> Result<(), String> {
        let line = LineAddr(u(event, "line"));
        // Lenient: repros committed before multi-tenant hardening carry no
        // tenant field and replay with the pre-extension semantics.
        let tenant = u_or(event, "tenant", 0) as u8;
        match op(event) {
            "lookup" => {
                let pc = u(event, "pc");
                let source = source_of(event);
                let now = u(event, "now");
                // Lenient like `tenant`: pre-perceptron repros carry no
                // depth field and replay as depth 0.
                let depth = u_or(event, "depth", 0);
                let req = PrefetchRequest {
                    line,
                    trigger_pc: pc,
                    source,
                    tenant,
                    depth: depth.min(u8::MAX as u64) as u8,
                };
                let real = self.real.should_prefetch(&req, now);
                let oracle = self.oracle.lookup(line, pc, source, tenant, depth, now);
                if real != oracle {
                    return Err(format!(
                        "lookup decision: real {real} vs oracle {oracle} for {event}"
                    ));
                }
            }
            "evict" => {
                let pc = u(event, "pc");
                let source = source_of(event);
                let referenced = crate::event::b(event, "referenced");
                let depth = u_or(event, "depth", 0);
                let origin = PrefetchOrigin {
                    line,
                    trigger_pc: pc,
                    source,
                    tenant,
                    depth: depth.min(u8::MAX as u64) as u8,
                };
                self.real.on_eviction(&origin, referenced);
                self.oracle
                    .evict(line, pc, source, tenant, depth, referenced);
            }
            "demand_miss" => {
                let now = u(event, "now");
                self.real.on_demand_miss(line, now);
                self.oracle.demand_miss(line, now);
            }
            other => panic!("filter harness: unknown op `{other}` in {event}"),
        }
        self.check_state()
    }
}

fn source_of(e: &JsonValue) -> PrefetchSource {
    PrefetchSource::from_json(&JsonValue::Str(s(e, "source").to_string()))
        .unwrap_or_else(|err| panic!("bad prefetch source in {e}: {err}"))
}

/// Build a lookup event (shared with the sim tap replay in tests).
pub fn lookup_event(
    line: LineAddr,
    pc: u64,
    source: PrefetchSource,
    tenant: u8,
    depth: u8,
    now: u64,
) -> JsonValue {
    obj(&[
        ("op", JsonValue::Str("lookup".into())),
        ("line", line.0.to_json()),
        ("pc", pc.to_json()),
        ("source", source.to_json()),
        ("tenant", (tenant as u64).to_json()),
        ("depth", (depth as u64).to_json()),
        ("now", now.to_json()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(kind: FilterKind) -> FilterConfig {
        FilterConfig {
            kind,
            ..FilterConfig::default()
        }
    }

    #[test]
    fn weakly_good_first_touch_passes() {
        let mut f = RefFilter::new(&cfg(FilterKind::Pa)).unwrap();
        assert!(f.lookup(LineAddr(5), 0x100, PrefetchSource::Nsp, 0, 1, 0));
    }

    #[test]
    fn two_bad_outcomes_reject_then_recovery_trains_back() {
        let mut f = RefFilter::new(&cfg(FilterKind::Pa)).unwrap();
        let l = LineAddr(5);
        f.evict(l, 0x100, PrefetchSource::Nsp, 0, 1, false);
        f.evict(l, 0x100, PrefetchSource::Nsp, 0, 1, false);
        assert!(!f.lookup(l, 0x100, PrefetchSource::Nsp, 0, 1, 10));
        f.demand_miss(l, 20);
        assert_eq!(f.stats().recovered, 1);
    }

    #[test]
    fn stale_recovery_is_dropped() {
        let mut f = RefFilter::new(&cfg(FilterKind::Pa)).unwrap();
        let l = LineAddr(5);
        f.evict(l, 0x100, PrefetchSource::Nsp, 0, 1, false);
        f.evict(l, 0x100, PrefetchSource::Nsp, 0, 1, false);
        assert!(!f.lookup(l, 0x100, PrefetchSource::Nsp, 0, 1, 0));
        f.demand_miss(l, 100_000);
        assert_eq!(f.stats().recovered, 0, "beyond the freshness window");
    }

    #[test]
    fn salted_fold_matches_the_real_hash() {
        // The oracle re-derives the keyed fold from DESIGN.md §12; it must
        // land on the same 16-bit keys as `ppf_filter::hash` for every salt.
        for salt in [0u64, 1, 0x5eed_cafe_f00d_d00d, u64::MAX] {
            for v in [0u64, 5, 0xdead_beef, 0x1234_5678_9abc_def0, u64::MAX] {
                assert_eq!(
                    fold16_salted(v, salt),
                    ppf_filter::hash::fold16_salted(v, salt),
                    "salt {salt:#x} value {v:#x}"
                );
            }
        }
    }

    #[test]
    fn partitioned_filter_isolates_tenants() {
        let mut c = cfg(FilterKind::Pa);
        c.tenant_partitions = 4;
        let mut f = RefFilter::new(&c).unwrap();
        let l = LineAddr(5);
        // Tenant 1 poisons its counter for the line...
        f.evict(l, 0x100, PrefetchSource::Nsp, 1, 1, false);
        f.evict(l, 0x100, PrefetchSource::Nsp, 1, 1, false);
        assert!(!f.lookup(l, 0x100, PrefetchSource::Nsp, 1, 1, 0));
        // ...and every other tenant's view of the same line is untouched.
        for victim in [0u8, 2, 3] {
            assert!(f.lookup(l, 0x100, PrefetchSource::Nsp, victim, 1, 0));
        }
    }

    #[test]
    fn tag_mixed_salt_separates_tenant_keys() {
        // With a nonzero salt, the same line hashes to different keys for
        // different tenants even in a shared (P=1) table.
        let mut c = cfg(FilterKind::Pa);
        c.hash_salt = 0x5eed_cafe_f00d_d00d;
        let f = RefFilter::new(&c).unwrap();
        let k0 = pa_key(LineAddr(5), f.effective_salt(0));
        let k1 = pa_key(LineAddr(5), f.effective_salt(1));
        assert_ne!(k0, k1, "tenants must index through distinct permutations");
    }

    #[test]
    fn hybrid_geometry_matches_real_budget_split() {
        let c = cfg(FilterKind::Hybrid);
        let f = RefFilter::new(&c).unwrap();
        let real = PollutionFilter::new(&c);
        assert_eq!(f.counters()[0].len(), real.table_entries());
        assert_eq!(f.chooser().map(<[u8]>::len), real.chooser_entries());
    }

    #[test]
    fn gated_config_is_refused() {
        let mut c = cfg(FilterKind::Pa);
        c.adaptive_accuracy_threshold = Some(0.5);
        assert!(RefFilter::new(&c).is_err());
    }

    #[test]
    fn perceptron_geometry_matches_real_weight_tables() {
        for (entries, bits, parts) in [(4096usize, 2u8, 1usize), (1024, 2, 1), (4096, 2, 4)] {
            let mut c = cfg(FilterKind::Perceptron);
            c.table_entries = entries;
            c.counter_bits = bits;
            c.tenant_partitions = parts;
            let f = RefFilter::new(&c).unwrap();
            let real = PollutionFilter::new(&c);
            assert_eq!(
                f.perceptron_weights().map(<[Vec<i8>]>::to_vec),
                real.weight_snapshot(),
                "{entries}x{bits} P={parts}"
            );
        }
    }

    #[test]
    fn perceptron_admits_until_trained_then_recovers() {
        let mut f = RefFilter::new(&cfg(FilterKind::Perceptron)).unwrap();
        let l = LineAddr(5);
        assert!(f.lookup(l, 0x100, PrefetchSource::Nsp, 0, 1, 0));
        f.evict(l, 0x100, PrefetchSource::Nsp, 0, 1, false);
        assert!(!f.lookup(l, 0x100, PrefetchSource::Nsp, 0, 1, 5));
        f.demand_miss(l, 10);
        assert_eq!(f.stats().recovered, 1);
        assert!(f.lookup(l, 0x100, PrefetchSource::Nsp, 0, 1, 11));
    }

    #[test]
    fn perceptron_lockstep_smoke_random_events() {
        // A miniature campaign inline: drive both models through the
        // harness path with a config mix (plain, salted, partitioned) and
        // require byte-identical weights and stats at every step.
        for (salt, parts) in [
            (0u64, 1usize),
            (0x5eed_cafe_f00d_d00d, 1),
            (0, 4),
            (0xbeef, 4),
        ] {
            let mut c = cfg(FilterKind::Perceptron);
            c.table_entries = 256;
            c.counter_bits = 2;
            c.hash_salt = salt;
            c.tenant_partitions = parts;
            let mut h = FilterHarness::from_config(&c.to_json()).unwrap();
            let mut x = 0x1234_5678_9abc_def0u64 ^ salt;
            for step in 0..400u64 {
                // xorshift64 event stream.
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let line = LineAddr(x % 512);
                let pc = 0x400 + (x >> 9) % 64 * 4;
                let tenant = ((x >> 20) % 4) as u8;
                let depth = (x >> 24) % 20;
                let ev = match x % 3 {
                    0 => lookup_event(line, pc, PrefetchSource::Nsp, tenant, depth as u8, step),
                    1 => obj(&[
                        ("op", JsonValue::Str("evict".into())),
                        ("line", line.0.to_json()),
                        ("pc", pc.to_json()),
                        ("source", PrefetchSource::Nsp.to_json()),
                        ("tenant", (tenant as u64).to_json()),
                        ("depth", depth.to_json()),
                        ("referenced", (x & 8 == 0).to_json()),
                    ]),
                    _ => obj(&[
                        ("op", JsonValue::Str("demand_miss".into())),
                        ("line", line.0.to_json()),
                        ("now", step.to_json()),
                    ]),
                };
                h.step(&ev).unwrap_or_else(|e| {
                    panic!("divergence at step {step} (salt {salt:#x} P={parts}): {e}")
                });
            }
        }
    }
}
