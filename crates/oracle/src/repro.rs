//! Self-contained, replayable divergence repros.
//!
//! A repro is one JSONL file: a header line
//! `{"version":1,"kind":"cache","config":{...},"note":"..."}` followed by
//! one compact event object per line. The file carries everything needed to
//! rebuild the harness and re-execute the failing stream — no seed, no
//! generator version, no reference to the campaign that found it — so a
//! case minimized today still replays after the generators change.
//!
//! Minimized cases from CI land in `tests/repros/` (see its README.md) and
//! the `replay_committed_corpus` test in `tests/oracle.rs` re-runs every
//! committed file on each CI pass.

use crate::lockstep::run_lockstep;
use crate::{harness_for, Harness};
use ppf_types::JsonValue;
use std::io;
use std::path::{Path, PathBuf};

/// Current on-disk format version, written into every header.
pub const FORMAT_VERSION: u64 = 1;

/// A parsed (or about-to-be-written) repro case.
#[derive(Debug, Clone)]
pub struct Repro {
    /// Harness kind (`"cache"`, `"filter"`, `"mshr"`, `"ports"`).
    pub kind: String,
    /// Configuration both sides are rebuilt from.
    pub config: JsonValue,
    /// The (minimized) event stream.
    pub events: Vec<JsonValue>,
    /// Free-form provenance: seed, divergence detail, injection drill, …
    pub note: Option<String>,
}

impl Repro {
    /// Capture a repro from a harness and the stream that diverged on it.
    pub fn capture(harness: &dyn Harness, events: Vec<JsonValue>, note: Option<String>) -> Repro {
        Repro {
            kind: harness.kind().to_string(),
            config: harness.config(),
            events,
            note,
        }
    }

    /// Serialize to the JSONL wire format (header + one event per line).
    /// `JsonValue`'s `Display` is compact single-line JSON, which is what
    /// keeps each event on its own line.
    pub fn to_jsonl(&self) -> String {
        let mut header = vec![
            ("version".to_string(), JsonValue::UInt(FORMAT_VERSION)),
            ("kind".to_string(), JsonValue::Str(self.kind.clone())),
            ("config".to_string(), self.config.clone()),
        ];
        if let Some(note) = &self.note {
            header.push(("note".to_string(), JsonValue::Str(note.clone())));
        }
        let mut out = JsonValue::Object(header).to_string();
        out.push('\n');
        for event in &self.events {
            out.push_str(&event.to_string());
            out.push('\n');
        }
        out
    }

    /// Parse the JSONL wire format. Blank lines and `#`-prefixed comment
    /// lines are ignored so committed cases can carry annotations.
    pub fn parse_jsonl(text: &str) -> Result<Repro, String> {
        let mut lines = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'));
        let header_line = lines.next().ok_or("empty repro file")?;
        let header = JsonValue::parse(header_line).map_err(|e| format!("bad repro header: {e}"))?;
        let version = header
            .get("version")
            .and_then(JsonValue::as_u64)
            .ok_or("repro header missing version")?;
        if version != FORMAT_VERSION {
            return Err(format!(
                "unsupported repro version {version} (expected {FORMAT_VERSION})"
            ));
        }
        let kind = header
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or("repro header missing kind")?
            .to_string();
        let config = header
            .get("config")
            .ok_or("repro header missing config")?
            .clone();
        let note = header
            .get("note")
            .and_then(JsonValue::as_str)
            .map(str::to_string);
        let events = lines
            .enumerate()
            .map(|(i, l)| {
                JsonValue::parse(l).map_err(|e| format!("bad event on line {}: {e}", i + 2))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Repro {
            kind,
            config,
            events,
            note,
        })
    }

    /// Rebuild the harness this repro targets.
    pub fn harness(&self) -> Result<Box<dyn Harness>, String> {
        harness_for(&self.kind, &self.config)
    }

    /// Re-execute the case. `Ok(())` means real and oracle agree on the
    /// whole stream; `Err` describes the (still-present) divergence.
    pub fn replay(&self) -> Result<(), String> {
        let mut harness = self.harness()?;
        match run_lockstep(&mut *harness, &self.events) {
            None => Ok(()),
            Some(d) => Err(format!(
                "{} repro diverges at step {}: {} (event {})",
                self.kind, d.step, d.detail, d.event
            )),
        }
    }
}

/// Parse and replay a repro from its JSONL text in one call.
pub fn replay_str(text: &str) -> Result<(), String> {
    Repro::parse_jsonl(text)?.replay()
}

/// Write `repro` as `<dir>/<name>.jsonl`, creating `dir` if needed.
/// Returns the path written.
pub fn write_repro(dir: &Path, name: &str, repro: &Repro) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.jsonl"));
    std::fs::write(&path, repro.to_jsonl())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn jsonl_round_trip_preserves_everything() {
        let (config, events) = generate::case("mshr", 7);
        let repro = Repro {
            kind: "mshr".into(),
            config,
            events,
            note: Some("seed 7".into()),
        };
        let parsed = Repro::parse_jsonl(&repro.to_jsonl()).expect("round trip");
        assert_eq!(parsed.kind, repro.kind);
        assert_eq!(parsed.config, repro.config);
        assert_eq!(parsed.events, repro.events);
        assert_eq!(parsed.note, repro.note);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let (config, events) = generate::case("ports", 3);
        let repro = Repro {
            kind: "ports".into(),
            config,
            events,
            note: None,
        };
        let annotated = format!("# provenance comment\n\n{}", repro.to_jsonl());
        let parsed = Repro::parse_jsonl(&annotated).expect("annotated parse");
        assert_eq!(parsed.events, repro.events);
    }

    #[test]
    fn clean_case_replays_clean() {
        let (config, events) = generate::case("cache", 11);
        let repro = Repro {
            kind: "cache".into(),
            config,
            events,
            note: None,
        };
        replay_str(&repro.to_jsonl()).expect("no divergence on the current tree");
    }

    #[test]
    fn wrong_version_is_rejected() {
        assert!(Repro::parse_jsonl("{\"version\":2,\"kind\":\"mshr\",\"config\":{}}").is_err());
    }
}
