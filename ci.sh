#!/bin/sh
# The repository's tier-1 gate, runnable locally and from CI.
# Order matters: the release build is the cheapest smoke signal, the quick
# test pass is what the roadmap defines as tier-1, and clippy last so a
# lint never masks a real failure.
set -eux

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings

# Fault-injection drills again in release mode: panic unwinding, the
# watchdog and checkpoint resume must also hold under optimized codegen.
cargo test --release -q --test fault_tolerance
cargo test --release -q -p ppf-bench --test checkpoint
