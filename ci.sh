#!/bin/sh
# The repository's tier-1 gate, runnable locally and from CI.
# Order matters: the release build is the cheapest smoke signal, the quick
# test pass is what the roadmap defines as tier-1, and clippy last so a
# lint never masks a real failure.
set -eux

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
