#!/bin/sh
# The repository's tier-1 gate, runnable locally and from CI.
#
# With no argument every stage runs in order: the release build is the
# cheapest smoke signal, the quick test pass is what the roadmap defines
# as tier-1, and lints last so a formatting nit never masks a real
# failure. CI instead fans the stages out as matrix shards, one stage
# name per job, so a clippy warning and a test failure surface in the
# same run.
set -eux

stage="${1:-all}"

build_test() {
    cargo build --release
    cargo test -q
}

lint() {
    cargo fmt --all -- --check
    cargo clippy --workspace -- -D warnings
}

fault_drills() {
    # Fault-injection drills again in release mode: panic unwinding, the
    # watchdog and checkpoint resume must also hold under optimized codegen.
    cargo test --release -q --test fault_tolerance
    cargo test --release -q -p ppf-bench --test checkpoint
    # Telemetry smoke: one instrumented cell through the release binary
    # must leave at least one valid JSONL interval record behind.
    cargo build --release -p ppf-bench
    tdir="$(mktemp -d)"
    ./target/release/figures --insts 20000 --telemetry "$tdir" fig2 > /dev/null
    head -n 1 "$tdir"/fig2/*.jsonl | grep -q '"fraction_good"'
    rm -rf "$tdir"
}

oracle() {
    # Differential-oracle campaign (DESIGN.md §11): lockstep-check the
    # optimized structures against their naive reference models over
    # seeded random event streams, and replay the committed repro corpus.
    # The randomized budget is bounded so the shard stays fast; CI trims
    # it further on pull requests. A divergence writes a minimized JSONL
    # repro (path in the failure message) before failing the shard.
    : "${PPF_ORACLE_CASES:=1000}"
    export PPF_ORACLE_CASES
    cargo test --release -q --test oracle
}

attack_drills() {
    # Adversarial robustness drills (DESIGN.md §12): the attack-vs-hardening
    # matrix at a trimmed budget through the release figures binary, then
    # one timeline run that must produce a time-to-recover analysis for a
    # poisoning campaign on the hybrid filter. Lockstep conformance of the
    # hardened configurations is the oracle shard's job; this one proves
    # the attack plumbing end-to-end.
    cargo build --release -p ppf-bench
    ./target/release/figures --insts 20000 attack-matrix > /dev/null
    ./target/release/bench timeline em3d --filter hybrid --insts 60000 \
        --attack poison --attack-start 10000 --attack-stop 30000 \
        | grep -q 'recovery:'
}

bench_smoke() {
    # Perf gate: quick throughput run compared against the committed
    # baseline; exits non-zero if any layer regresses past the threshold.
    # Telemetry is off here (as everywhere by default), so this same gate
    # bounds the cost of the telemetry-off hot path.
    cargo build --release -p ppf-bench
    ./target/release/bench throughput --quick --no-write \
        --baseline BENCH_baseline.json
}

case "$stage" in
build-test) build_test ;;
lint) lint ;;
fault-drills) fault_drills ;;
attack-drills) attack_drills ;;
oracle) oracle ;;
bench-smoke) bench_smoke ;;
all)
    build_test
    lint
    fault_drills
    attack_drills
    oracle
    ;;
*)
    echo "unknown stage: $stage (build-test|lint|fault-drills|attack-drills|oracle|bench-smoke|all)" >&2
    exit 2
    ;;
esac
