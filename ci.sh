#!/bin/sh
# The repository's tier-1 gate, runnable locally and from CI.
#
# With no argument every stage runs in order: the release build is the
# cheapest smoke signal, the quick test pass is what the roadmap defines
# as tier-1, and lints last so a formatting nit never masks a real
# failure. CI instead fans the stages out as matrix shards, one stage
# name per job, so a clippy warning and a test failure surface in the
# same run.
set -eux

stage="${1:-all}"

build_test() {
    cargo build --release
    cargo test -q
}

lint() {
    cargo fmt --all -- --check
    cargo clippy --workspace -- -D warnings
}

fault_drills() {
    # Fault-injection drills again in release mode: panic unwinding, the
    # watchdog and checkpoint resume must also hold under optimized codegen.
    cargo test --release -q --test fault_tolerance
    cargo test --release -q -p ppf-bench --test checkpoint
    # Telemetry smoke: one instrumented cell through the release binary
    # must leave at least one valid JSONL interval record behind.
    cargo build --release -p ppf-bench
    tdir="$(mktemp -d)"
    ./target/release/figures --insts 20000 --telemetry "$tdir" fig2 > /dev/null
    head -n 1 "$tdir"/fig2/*.jsonl | grep -q '"fraction_good"'
    rm -rf "$tdir"
}

kernel_identity() {
    # Cycle-identity drill for the skip-ahead kernel (DESIGN.md §14): both
    # kernels against the committed golden, the divergence property test,
    # and the port-arbitration pins — in release mode, since the skip
    # logic's wake-up caching is exactly the code optimized builds reorder.
    cargo test --release -q --test kernel_identity
    cargo test --release -q --test port_contention
}

oracle() {
    # Differential-oracle campaign (DESIGN.md §11): lockstep-check the
    # optimized structures against their naive reference models over
    # seeded random event streams, and replay the committed repro corpus.
    # Half the filter cases draw the perceptron kind (salted and
    # partitioned variants included), so the weight tables are conformance
    # -checked here at the same budget as the counter filters.
    # The randomized budget is bounded so the shard stays fast; CI trims
    # it further on pull requests. A divergence writes a minimized JSONL
    # repro (path in the failure message) before failing the shard.
    : "${PPF_ORACLE_CASES:=1000}"
    export PPF_ORACLE_CASES
    cargo test --release -q --test oracle
}

attack_drills() {
    # Adversarial robustness drills (DESIGN.md §12): the attack-vs-hardening
    # matrix at a trimmed budget through the release figures binary, then
    # one timeline run that must produce a time-to-recover analysis for a
    # poisoning campaign on the hybrid filter. Lockstep conformance of the
    # hardened configurations is the oracle shard's job; this one proves
    # the attack plumbing end-to-end.
    cargo build --release -p ppf-bench
    ./target/release/figures --insts 20000 attack-matrix > /dev/null
    ./target/release/bench timeline em3d --filter hybrid --insts 60000 \
        --attack poison --attack-start 10000 --attack-stop 30000 \
        | grep -q 'recovery:'
}

bench_smoke() {
    # Perf gate: quick throughput run compared against the committed
    # baseline; exits non-zero if any layer regresses past the threshold.
    # Five trials per layer (fastest kept) reject host scheduling noise,
    # which is what lets the threshold sit at 15% instead of the old 20.
    # Telemetry is off here (as everywhere by default), so this same gate
    # bounds the cost of the telemetry-off hot path.
    cargo build --release -p ppf-bench
    ./target/release/bench throughput --quick --trials 5 --no-write \
        --baseline BENCH_baseline.json --max-regress 15
}

figures_shard() {
    # Sharded sweep fabric (DESIGN.md §13): run only the cells owned by
    # shard K of N and leave the fragment directory + manifest behind for
    # the figures-merge stage. The wall time is recorded beside the
    # fragments so the merge job can surface per-shard skew.
    k="$1"
    n="$2"
    : "${PPF_SHARD_INSTS:=100000}"
    cargo build --release -p ppf-bench
    outdir="fragments/shard-$k"
    rm -rf "$outdir"
    mkdir -p "$outdir"
    start=$(date +%s)
    ./target/release/figures --insts "$PPF_SHARD_INSTS" \
        --json "$outdir" --shard "$k/$n" all > /dev/null
    end=$(date +%s)
    echo "figures-shard $k/$n $((end - start))s" > "$outdir/TIMINGS.txt"
    if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
        cat "$outdir/TIMINGS.txt" >> "$GITHUB_STEP_SUMMARY"
    fi
}

figures_merge() {
    # Reassemble the shard fragments into per-experiment documents. The
    # merge itself is the coverage gate: it exits 2 on gaps and 1 on
    # inconsistent manifests, so a lost or skewed shard fails this stage.
    # The throughput ratchet rides along here so a perf regression can't
    # hide behind a green sweep.
    cargo build --release -p ppf-bench
    start=$(date +%s)
    ./target/release/figures merge --out merged fragments/*/
    end=$(date +%s)
    ls merged
    timings_summary "$((end - start))s"
    ./target/release/bench throughput --quick --trials 5 --no-write \
        --baseline BENCH_baseline.json --max-regress 15
}

timings_summary() {
    # Per-shard wall times (written by figures_shard next to each
    # fragment set) plus the merge time, as a markdown table appended to
    # the GitHub Actions job summary — or stdout when run locally.
    merge_time="$1"
    summary="${GITHUB_STEP_SUMMARY:-/dev/stdout}"
    {
        echo "### Sharded sweep timings"
        echo ""
        echo "| stage | wall time |"
        echo "| --- | --- |"
        for f in fragments/*/TIMINGS.txt; do
            [ -f "$f" ] || continue
            read -r name spec secs < "$f"
            echo "| $name $spec | $secs |"
        done
        echo "| merge | $merge_time |"
    } >> "$summary"
}

case "$stage" in
build-test) build_test ;;
lint) lint ;;
fault-drills) fault_drills ;;
attack-drills) attack_drills ;;
kernel-identity) kernel_identity ;;
oracle) oracle ;;
bench-smoke) bench_smoke ;;
figures-shard) figures_shard "${2:?usage: ci.sh figures-shard K N}" "${3:?usage: ci.sh figures-shard K N}" ;;
figures-merge) figures_merge ;;
all)
    build_test
    lint
    fault_drills
    attack_drills
    kernel_identity
    oracle
    ;;
*)
    echo "unknown stage: $stage (build-test|lint|fault-drills|attack-drills|kernel-identity|oracle|bench-smoke|figures-shard K N|figures-merge|all)" >&2
    exit 2
    ;;
esac
