//! A tiny, dependency-free subset of the `criterion` benchmarking API.
//!
//! The build environment has no crates.io access, so the real `criterion`
//! cannot be fetched. This shim keeps the workspace's `cargo bench` targets
//! compiling and producing useful wall-clock numbers: each benchmark runs a
//! short warmup followed by `sample_size` timed samples and prints the mean,
//! minimum, and maximum sample time. No statistics engine, no plots.

use std::time::{Duration, Instant};

/// Passed to the closure given to [`Criterion::bench_function`]; its
/// [`iter`](Bencher::iter) method times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Run `routine` once per sample and record each sample's duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: one untimed call so lazy setup (allocations, table fills)
        // does not pollute the first sample.
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Benchmark driver. Only `sample_size` is configurable.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be nonzero");
        self.sample_size = n;
        self
    }

    /// Run one named benchmark and print a summary line.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        if b.samples.is_empty() {
            println!("{name}: no samples recorded");
            return self;
        }
        let total: Duration = b.samples.iter().sum();
        let mean = total / b.samples.len() as u32;
        let min = b.samples.iter().min().unwrap();
        let max = b.samples.iter().max().unwrap();
        println!(
            "{name}: mean {:>12?}  min {:>12?}  max {:>12?}  ({} samples)",
            mean,
            min,
            max,
            b.samples.len()
        );
        self
    }
}

/// Mirror of criterion's `criterion_group!`: defines a function running
/// every target against a shared [`Criterion`] config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Mirror of criterion's `criterion_main!`: the bench binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_nothing(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    criterion_group! {
        name = smoke;
        config = Criterion::default().sample_size(3);
        targets = bench_nothing,
    }

    #[test]
    fn group_runs() {
        smoke();
    }
}
