//! A small, dependency-free subset of the `proptest` crate API.
//!
//! The build environment for this workspace has no access to a crates.io
//! mirror, so the real `proptest` cannot be fetched. This vendored stand-in
//! implements exactly the surface the workspace's property tests use:
//!
//! * the `proptest!` macro (with an optional `#![proptest_config(..)]`),
//! * `Strategy` with `prop_map`, integer/float range strategies, tuple
//!   strategies, `Just`, `any::<T>()`, `prop::collection::vec`,
//! * `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`,
//!   `prop_assume!`, `ProptestConfig`, `TestCaseError`.
//!
//! Unlike the real crate it does **no shrinking** and no failure persistence:
//! a failing case panics with the generated inputs' assertion message. Runs
//! are fully deterministic — the RNG is seeded from the test name, so a
//! failure reproduces by re-running the same test.

pub mod test_runner {
    /// Run-loop configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful (non-rejected) cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case was vetoed by `prop_assume!`; it is retried, not failed.
        Reject(String),
        /// An assertion failed; the whole test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// Construct a failure.
        pub fn fail<S: Into<String>>(reason: S) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// Construct a rejection.
        pub fn reject<S: Into<String>>(reason: S) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
                TestCaseError::Fail(r) => write!(f, "failed: {r}"),
            }
        }
    }

    /// Deterministic SplitMix64 generator seeding each test from its name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from an arbitrary string (the test name).
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name gives a stable, well-mixed seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit value (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`. `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of test values. No shrinking — `generate` is the whole
    /// contract.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// One boxed generator arm of a [`OneOf`] choice.
    pub type OneOfArm<T> = Box<dyn Fn(&mut TestRng) -> T>;

    /// Uniform choice between boxed generator arms (`prop_oneof!` backend).
    pub struct OneOf<T> {
        arms: Vec<OneOfArm<T>>,
    }

    impl<T> OneOf<T> {
        /// Build from a non-empty arm list.
        pub fn new(arms: Vec<OneOfArm<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { arms }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            (self.arms[i])(rng)
        }
    }

    macro_rules! unsigned_range_strategy {
        ($($ty:ty),+) => {$(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $ty
                }
            }
            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        rng.next_u64() as $ty
                    } else {
                        lo + rng.below(span + 1) as $ty
                    }
                }
            }
        )+};
    }
    unsigned_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($ty:ty),+) => {$(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $ty
                }
            }
            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        rng.next_u64() as $ty
                    } else {
                        (lo as i128 + rng.below(span + 1) as i128) as $ty
                    }
                }
            }
        )+};
    }
    signed_range_strategy!(i8, i16, i32, i64);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($S:ident => $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(S0 => 0, S1 => 1);
    tuple_strategy!(S0 => 0, S1 => 1, S2 => 2);
    tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3);
    tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4);
    tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4, S5 => 5);
    tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4, S5 => 5, S6 => 6);
    tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4, S5 => 5, S6 => 6, S7 => 7);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($ty:ty),+) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )+};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The strategy of all values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive-exclusive length bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generate vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The test macro: runs each `fn name(pat in strategy, ...) { body }` as a
/// `#[test]` over `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                let mut ran: u32 = 0;
                let mut attempts: u64 = 0;
                while ran < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= (config.cases as u64) * 16 + 1024,
                        "proptest {}: too many cases rejected by prop_assume!",
                        stringify!($name)
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => ran += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed at case {}: {}",
                                stringify!($name), ran, msg
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Uniform choice among strategy arms (all arms must yield the same type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $({
                let s = $strat;
                ::std::boxed::Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                    $crate::strategy::Strategy::generate(&s, rng)
                }) as ::std::boxed::Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>
            }),+
        ])
    };
}

/// Assert inside a proptest body; failure aborts the whole test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), l, r
        );
    }};
}

/// Inequality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "{}\n  both: {:?}",
            format!($($fmt)+), l
        );
    }};
}

/// Veto the current case (it is regenerated, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

pub mod prelude {
    //! Everything the tests import with `use proptest::prelude::*`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace mirror of the real crate's `prop` module.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u64..17, b in -5i64..5, f in 0.0..1.0f64) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(any::<bool>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn oneof_and_map_compose(x in prop_oneof![Just(1u32), (10u32..20).prop_map(|v| v * 2)]) {
            prop_assert!(x == 1 || (20u32..40).contains(&x));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u8..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::deterministic("same");
        let mut b = TestRng::deterministic("same");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
