//! Shape assertions for the paper's main results: not exact numbers (the
//! substrate is a synthetic model, see EXPERIMENTS.md) but the direction
//! and rough magnitude of every headline claim.

mod common;

use common::{by, run_one};
use ppf::sim::{run_grid, RunSpec, SimReport};
use ppf::types::{FilterKind, SystemConfig};
use ppf::workloads::Workload;

const N: u64 = 400_000;

fn filter_grid(base: SystemConfig) -> Vec<SimReport> {
    common::filter_grid(base, N)
}

#[test]
fn filters_cut_bad_more_than_good() {
    // The paper's core claim (Figure 4): both filters eliminate a large
    // share of bad prefetches while keeping proportionally more good ones.
    let reports = filter_grid(SystemConfig::paper_default());
    let none = by(&reports, "none");
    for label in ["PA", "PC"] {
        let filt = by(&reports, label);
        let mut bad_kept = 0.0;
        let mut good_kept = 0.0;
        for i in 0..none.len() {
            bad_kept += filt[i].stats.bad_total() as f64 / none[i].stats.bad_total().max(1) as f64;
            good_kept +=
                filt[i].stats.good_total() as f64 / none[i].stats.good_total().max(1) as f64;
        }
        bad_kept /= none.len() as f64;
        good_kept /= none.len() as f64;
        assert!(
            bad_kept < 0.75,
            "{label}: should remove a large share of bad prefetches, kept {bad_kept:.2}"
        );
        assert!(
            good_kept > bad_kept + 0.1,
            "{label}: must keep clearly more good than bad (good {good_kept:.2}, bad {bad_kept:.2})"
        );
    }
}

#[test]
fn filters_reduce_prefetch_bandwidth() {
    // §5.2.1: large reduction in total prefetch traffic.
    let reports = filter_grid(SystemConfig::paper_default());
    let none = by(&reports, "none");
    for label in ["PA", "PC"] {
        let filt = by(&reports, label);
        let base: u64 = none.iter().map(|r| r.stats.prefetches_issued.total()).sum();
        let kept: u64 = filt.iter().map(|r| r.stats.prefetches_issued.total()).sum();
        assert!(
            (kept as f64) < 0.85 * base as f64,
            "{label}: issued prefetch traffic should drop materially ({kept} vs {base})"
        );
    }
}

#[test]
fn filter_helps_pollution_dominated_benchmarks() {
    // Where bad prefetches dominate (pointer-chasing with big cold
    // footprints), the filter's pollution relief must show up as IPC gain —
    // the sign of the paper's Figure 6 for its worst polluters.
    let reports = filter_grid(SystemConfig::paper_default());
    let none = by(&reports, "none");
    let pa = by(&reports, "PA");
    for (i, r) in none.iter().enumerate() {
        if matches!(
            Workload::from_name(&r.workload),
            Some(Workload::Perimeter) | Some(Workload::Mcf)
        ) {
            let gain = pa[i].ipc() / r.ipc();
            assert!(
                gain > 1.0,
                "{}: PA filter should improve IPC, got {:.3}x",
                r.workload,
                gain
            );
        }
    }
}

#[test]
fn pointer_codes_have_mostly_bad_prefetches() {
    // Figure 1's split: next-line prefetching is mostly wrong on pointer
    // chasing and mostly right on strided FP.
    let reports = run_grid(
        [
            Workload::Perimeter,
            Workload::Gcc,
            Workload::Wave5,
            Workload::Fpppp,
        ]
        .iter()
        .map(|&w| RunSpec::new("none", SystemConfig::paper_default(), w).instructions(N))
        .collect(),
    );
    let frac_bad = |r: &SimReport| {
        r.stats.bad_total() as f64 / (r.stats.bad_total() + r.stats.good_total()).max(1) as f64
    };
    assert!(frac_bad(&reports[0]) > 0.5, "perimeter mostly bad");
    assert!(frac_bad(&reports[1]) > 0.5, "gcc mostly bad");
    assert!(frac_bad(&reports[2]) < 0.3, "wave5 mostly good");
    assert!(frac_bad(&reports[3]) < 0.3, "fpppp mostly good");
}

#[test]
fn larger_cache_preserves_more_good_prefetches() {
    // §5.2.2: with a 32KB L1 the filters keep more good prefetches than
    // with 8KB (less eviction pressure, better-behaved feedback).
    let r8 = filter_grid(SystemConfig::paper_default());
    let r32 = filter_grid(SystemConfig::paper_default().with_l1_32k());
    let keep = |reports: &[SimReport]| {
        let none = by(reports, "none");
        let pa = by(reports, "PA");
        let mut k = 0.0;
        for i in 0..none.len() {
            k += pa[i].stats.good_total() as f64 / none[i].stats.good_total().max(1) as f64;
        }
        k / none.len() as f64
    };
    let keep8 = keep(&r8);
    let keep32 = keep(&r32);
    assert!(
        keep32 > keep8 - 0.02,
        "32KB keeps at least as many good prefetches (8KB {keep8:.2}, 32KB {keep32:.2})"
    );
}

#[test]
fn bigger_l1_reduces_miss_rate_at_a_latency_cost() {
    // §5.2.1's comparison point: the 16KB L1 (2-cycle) halves conflict and
    // capacity misses relative to the 8KB machine. (The paper reports a
    // ~20% IPC win for 16KB; in this model the extra hit cycle absorbs
    // most of that — see EXPERIMENTS.md — but the miss-rate effect, which
    // drives the paper's argument, must hold.)
    let mut grid = Vec::new();
    for &w in &Workload::ALL {
        grid.push(RunSpec::new("8KB", SystemConfig::paper_default(), w).instructions(N));
        grid.push(
            RunSpec::new("16KB", SystemConfig::paper_default().with_l1_16k(), w).instructions(N),
        );
    }
    let reports = run_grid(grid);
    let mut better = 0;
    for pair in reports.chunks(2) {
        if pair[1].stats.l1.miss_rate() <= pair[0].stats.l1.miss_rate() + 1e-6 {
            better += 1;
        }
    }
    assert!(
        better >= 9,
        "16KB must not raise the L1 miss rate ({better}/10 improved)"
    );
}

#[test]
fn prefetch_buffer_degrades_filter_classification_on_pointer_codes() {
    // §5.5 / Figure 15: "in most of the programs, adding a dedicated
    // prefetch buffer degrades the effectiveness of pollution filters" —
    // the 16-entry buffer's short lifetime misclassifies prefetches, and
    // the bad/good ratio under the filter gets *worse* for the
    // pointer-chasing programs. (The paper's companion IPC claim depends
    // on its 3-4x higher prefetch traffic; see EXPERIMENTS.md.)
    let mut grid = Vec::new();
    for w in [Workload::Perimeter, Workload::Mcf] {
        let pa = SystemConfig::paper_default().with_filter(FilterKind::Pa);
        grid.push(RunSpec::new("PA", pa.clone(), w).instructions(N));
        grid.push(RunSpec::new("PA+buf", pa.with_prefetch_buffer(), w).instructions(N));
    }
    let reports = run_grid(grid);
    for pair in reports.chunks(2) {
        let plain = pair[0].stats.bad_good_ratio();
        let buffered = pair[1].stats.bad_good_ratio();
        assert!(
            buffered > plain,
            "{}: buffer should worsen the bad/good ratio ({plain:.2} -> {buffered:.2})",
            pair[0].workload
        );
    }
}

#[test]
fn port_starved_machine_shows_contention() {
    // §5.4 foundation: with a single L1 port, demand accesses visibly
    // contend with prefetch traffic.
    let mut cfg = SystemConfig::paper_default();
    cfg.l1.ports = 1;
    let r = run_one("1port", cfg, Workload::Em3d, N);
    assert!(r.stats.demand_port_retries > 0);
    assert!(r.stats.l1_port_conflict_cycles > 0);
    let r3 = run_one("3port", SystemConfig::paper_default(), Workload::Em3d, N);
    assert!(
        r3.ipc() > r.ipc(),
        "three ports must beat one ({:.3} vs {:.3})",
        r3.ipc(),
        r.ipc()
    );
}
