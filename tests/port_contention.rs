//! Regression pins for L1 port arbitration (DESIGN.md §14).
//!
//! The drive loop runs *exactly one* prefetch-queue drain per cycle,
//! alternating priority: even cycles drain before the core's demand
//! traffic claims ports, odd cycles after. An earlier kernel drained the
//! queue twice on even cycles (once per priority side), silently doubling
//! the prefetch side's port bandwidth; and the drain spent a port on
//! resident duplicates before squashing them, charging §5.1's "no
//! penalty" case a full port grant.
//!
//! The stream here is crafted so the fixes are load-bearing: a single
//! universal L1 port, dense loads marching one fresh line per reference,
//! and an aggressive degree-4 NSP keeping the prefetch queue backlogged.
//! Every cycle with traffic on both sides is contested, so the exact
//! contention counters pin the arbitration schedule — a reintroduced
//! double drain, a drain moved to a fixed side of the core tick, or a
//! port spent on a squashed duplicate all shift them.

use ppf_cpu::{Inst, Op};
use ppf_sim::{KernelMode, Simulator};
use ppf_types::{FilterKind, SimStats, SystemConfig};

const INSTRUCTIONS: u64 = 20_000;

/// One universal L1 port and an unfiltered aggressive NSP: the smallest
/// machine in which demand and prefetch traffic genuinely fight.
fn single_port_config() -> SystemConfig {
    let mut cfg = SystemConfig::paper_default();
    cfg.l1.ports = 1;
    cfg.prefetch.nsp = true;
    cfg.prefetch.nsp_degree = 4;
    cfg.prefetch.sdp = false;
    cfg.filter.kind = FilterKind::None;
    cfg
}

/// Loads marching one 32-byte line forward per reference. Each access
/// either misses (triggering NSP) or hits a just-prefetched tagged line
/// (re-triggering NSP), so the queue never drains ahead of demand.
fn marching_loads() -> impl FnMut() -> Inst + Send {
    let mut n = 0u64;
    move || {
        n += 1;
        Inst::new(0x4000 + (n % 4) * 4, Op::Load { addr: 32 * n })
    }
}

fn contention_stats(kernel: KernelMode) -> SimStats {
    let mut sim = Simulator::new(single_port_config(), marching_loads())
        .expect("single-port config is valid")
        .with_kernel(kernel);
    sim.run(INSTRUCTIONS).stats
}

#[test]
fn port_contention_stats_are_pinned() {
    let s = contention_stats(KernelMode::SkipAhead);
    // Alternating priority means *both* sides lose arbitration: prefetch
    // pops block demand on even cycles, demand blocks pops on odd ones.
    // A drain pinned to one side of the core tick zeroes one of these.
    assert!(s.demand_port_retries > 0, "demand never lost arbitration");
    assert!(
        s.prefetch_port_retries > 0,
        "prefetch never lost arbitration"
    );
    assert!(s.l1_port_conflict_cycles > 0);
    // Exact pins for the crafted stream. These move only when the
    // arbitration schedule (or the machine timing upstream of it) changes
    // — which must be a deliberate, golden-regenerating decision.
    assert_eq!(
        (
            s.demand_port_retries,
            s.prefetch_port_retries,
            s.l1_port_conflict_cycles,
        ),
        (3809, 10457, 127),
        "port-contention pins moved: rerun and update deliberately"
    );
}

#[test]
fn kernels_agree_on_contention() {
    // Port contention is exactly the state the skip-ahead kernel must
    // never jump over: a backlogged queue wants a port every cycle.
    let a = contention_stats(KernelMode::Stepping);
    let b = contention_stats(KernelMode::SkipAhead);
    assert_eq!(a, b, "kernels diverged under sustained port contention");
}
