//! Shared support for the integration test suite.
//!
//! Every `tests/*.rs` integration binary compiles this module separately
//! (`mod common;`), so helpers here must stay dependency-light. The module
//! collects the RunSpec/grid/census idioms that used to be copy-pasted
//! across the suite; each test file keeps only its own budgets and
//! assertions.

#![allow(dead_code)] // each test binary uses a different subset

use ppf_sim::{RunSpec, SimReport, Simulator, WatchdogConfig};
use ppf_types::telemetry::TelemetryConfig;
use ppf_types::{FilterKind, SimStats, SystemConfig};
use ppf_workloads::Workload;

/// One run of `workload` on `cfg` at `n` instructions, labeled.
pub fn run_one(label: &str, cfg: SystemConfig, workload: Workload, n: u64) -> SimReport {
    RunSpec::new(label, cfg, workload).instructions(n).run()
}

/// A simulator seeded the standard way (workload stream and simulator share
/// `seed`).
pub fn sim(cfg: SystemConfig, workload: Workload, seed: u64) -> Simulator {
    Simulator::with_seed(cfg, Box::new(workload.stream(seed)), seed).expect("valid config")
}

/// Run the none/PA/PC filter sweep over every workload on `base` — the
/// grid behind the Figure 4/5 shape tests. Labels are
/// `FilterKind::label()`: `"none"`, `"PA"`, `"PC"`.
pub fn filter_grid(base: SystemConfig, n: u64) -> Vec<SimReport> {
    let mut grid = Vec::new();
    for kind in [FilterKind::None, FilterKind::Pa, FilterKind::Pc] {
        for &w in &Workload::ALL {
            grid.push(
                RunSpec::new(kind.label(), base.clone().with_filter(kind), w).instructions(n),
            );
        }
    }
    ppf_sim::run_grid(grid)
}

/// The reports in `reports` carrying `label`, in input order.
pub fn by<'a>(reports: &'a [SimReport], label: &str) -> Vec<&'a SimReport> {
    reports.iter().filter(|r| r.label == label).collect()
}

/// |measured - target| within max(rel · target, abs) — the calibration
/// tolerance test.
pub fn close(measured: f64, target: f64, rel: f64, abs: f64) -> bool {
    (measured - target).abs() <= (rel * target).max(abs)
}

/// Slack for the prefetch-census conservation check on `cfg`: warmup
/// prefetches classified post-reset overshoot, duplicates squashed at issue
/// undershoot; both are bounded by resident capacity (L1 + buffer + victim
/// entries) plus the prefetch queue.
pub fn census_slack(cfg: &SystemConfig) -> u64 {
    let victim = if cfg.victim.enabled {
        cfg.victim.entries
    } else {
        0
    };
    (cfg.l1.lines() + cfg.buffer.entries + victim + 64) as u64
}

/// Assert every issued prefetch was classified exactly once (good or bad),
/// within `slack` (see [`census_slack`]).
pub fn assert_census_conserved(r: &SimReport, slack: u64) {
    let issued = r.stats.prefetches_issued.total();
    let classified = r.stats.good_total() + r.stats.bad_total();
    assert!(
        classified + slack >= issued && classified <= issued + slack,
        "{}: issued {issued} vs classified {classified} (slack {slack})",
        r.workload
    );
}

/// A watchdog tight enough that a wedged cell trips in well under a
/// second, loose enough that healthy small cells never notice.
pub fn drill_watchdog() -> WatchdogConfig {
    WatchdogConfig {
        max_cpi: 10_000,
        stall_window: 20_000,
    }
}

/// A config whose memory never answers within the stall window: fault
/// streams' serially-dependent cold loads then wedge the pipeline.
pub fn wedged_config() -> SystemConfig {
    let mut cfg = SystemConfig::paper_default();
    cfg.mem.latency = 1_000_000_000;
    cfg
}

/// Run `workload` with optional telemetry attached — the telemetry suite's
/// "observer, never actor" comparisons all go through this single path.
pub fn run_with_telemetry(
    telemetry: Option<TelemetryConfig>,
    workload: Workload,
    seed: u64,
    n: u64,
) -> SimStats {
    let mut s = sim(SystemConfig::paper_default(), workload, seed);
    if let Some(cfg) = telemetry {
        s = s.with_telemetry(&cfg).expect("valid telemetry config");
    }
    s.run(n).stats
}
