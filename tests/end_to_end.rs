//! Cross-crate behaviour a downstream user depends on: the public API
//! composes, runs resume, counters stay conserved, and every machine
//! variant in the paper's evaluation space completes sanely.

mod common;

use common::{assert_census_conserved, census_slack, run_one};
use ppf::cpu::InstStream;
use ppf::sim::Simulator;
use ppf::types::{FilterKind, PrefetchConfig, SystemConfig};
use ppf::workloads::{trace, Workload};

const N: u64 = 150_000;

#[test]
fn census_conservation_across_machines() {
    // Every issued prefetch must be classified exactly once (good or bad)
    // by the end-of-run drain — over several machine variants.
    let variants = [
        SystemConfig::paper_default(),
        SystemConfig::paper_default().with_filter(FilterKind::Pa),
        SystemConfig::paper_default()
            .with_l1_32k()
            .with_filter(FilterKind::Pc),
        SystemConfig::paper_default().with_prefetch_buffer(),
    ];
    for cfg in variants {
        for w in [Workload::Em3d, Workload::Gzip] {
            let r = run_one("x", cfg.clone(), w, N);
            // Warmup-issued prefetches classified post-reset make
            // `classified` overshoot slightly; duplicates squashed at issue
            // make it undershoot. Both effects are bounded by the resident
            // capacity (every resident line is classified at most once).
            assert_census_conserved(&r, census_slack(&cfg));
        }
    }
}

#[test]
fn funnel_accounting_adds_up() {
    let r = run_one(
        "x",
        SystemConfig::paper_default().with_filter(FilterKind::Pa),
        Workload::Mcf,
        N,
    );
    let s = &r.stats;
    let proposed = s.prefetches_proposed.total();
    let accounted = s.prefetches_duplicate.total()
        + s.prefetches_filtered.total()
        + s.prefetches_queue_overflow.total()
        + s.prefetches_issued.total();
    // Requests still sitting in the prefetch queue at the end of the run
    // are the only unaccounted remainder.
    assert!(
        accounted <= proposed && proposed - accounted <= 64,
        "proposed {proposed} vs accounted {accounted}"
    );
}

#[test]
fn runs_resume_and_accumulate() {
    let mut sim = Simulator::new(SystemConfig::paper_default(), Workload::Wave5.stream(3)).unwrap();
    let r1 = sim.run(50_000);
    let r2 = sim.run(50_000);
    assert!(r2.stats.instructions >= 100_000);
    assert!(r2.stats.cycles > r1.stats.cycles);
    assert!(r2.stats.l1.demand_accesses > r1.stats.l1.demand_accesses);
}

#[test]
fn prefetch_off_machine_is_quiet_everywhere() {
    let mut cfg = SystemConfig::paper_default();
    cfg.prefetch = PrefetchConfig::disabled();
    for w in [Workload::Ijpeg, Workload::Mcf] {
        let r = run_one("off", cfg.clone(), w, N);
        assert_eq!(r.stats.prefetches_proposed.total(), 0, "{w}");
        assert_eq!(r.stats.l1.prefetch_fills, 0, "{w}");
        assert_eq!(r.stats.good_total() + r.stats.bad_total(), 0, "{w}");
    }
}

#[test]
fn recorded_trace_replays_identically() {
    // Record a trace prefix, then drive the simulator with the replayed
    // trace: the memory behaviour must match the live stream's.
    let mut live_stream = Workload::Gap.stream(11);
    let trace_bytes = trace::record(&mut Workload::Gap.stream(11), 200_000).unwrap();
    let replayed = trace::TraceStream::from_bytes(trace_bytes);

    let mut live_sim = Simulator::new(SystemConfig::paper_default(), {
        // Box the pre-built stream through a closure adaptor.
        move || live_stream.next_inst()
    })
    .unwrap();
    let mut replay_sim = Simulator::new(SystemConfig::paper_default(), replayed).unwrap();
    let a = live_sim.run(N);
    let b = replay_sim.run(N);
    assert_eq!(a.stats, b.stats);
}

#[test]
fn all_workloads_complete_on_all_figure_variants() {
    // Smoke over the whole evaluation space at a small budget: nothing
    // wedges, IPC stays in a plausible band.
    let variants = [
        SystemConfig::paper_default(),
        SystemConfig::paper_default().with_l1_32k(),
        SystemConfig::paper_default().with_l1_ports(4),
        SystemConfig::paper_default().with_l1_ports(5),
        SystemConfig::paper_default().with_prefetch_buffer(),
    ];
    for cfg in variants {
        for &w in &Workload::ALL {
            let r = run_one("smoke", cfg.clone(), w, 20_000);
            let ipc = r.ipc();
            assert!(ipc > 0.05 && ipc < 8.0, "{w}: ipc {ipc}");
        }
    }
}
