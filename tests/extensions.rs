//! Integration tests for the extensions beyond the paper (DESIGN.md §7):
//! per-source split history tables, the victim-cache ablation, the Markov
//! correlation prefetcher, the stride RPT, adaptive engagement, and the
//! strict (no-recovery) filter variant.

mod common;

use common::{assert_census_conserved, census_slack, run_one};
use ppf::sim::{run_grid, RunSpec};
use ppf::types::{FilterKind, JsonValue, PrefetchSource, SystemConfig, ToJson};
use ppf::workloads::Workload;

const N: u64 = 250_000;

#[test]
fn split_tables_cut_more_bad_prefetches_at_same_budget() {
    let mut grid = Vec::new();
    for (label, split) in [("shared", false), ("split", true)] {
        for &w in &Workload::ALL {
            let mut cfg = SystemConfig::paper_default().with_filter(FilterKind::Pc);
            cfg.filter.split_by_source = split;
            grid.push(RunSpec::new(label, cfg, w).instructions(N));
        }
    }
    let reports = run_grid(grid);
    let total = |label: &str, f: fn(&ppf::sim::SimReport) -> u64| -> u64 {
        reports.iter().filter(|r| r.label == label).map(f).sum()
    };
    let shared_bad = total("shared", |r| r.stats.bad_total());
    let split_bad = total("split", |r| r.stats.bad_total());
    let shared_good = total("shared", |r| r.stats.good_total());
    let split_good = total("split", |r| r.stats.good_total());
    assert!(
        split_bad < shared_bad,
        "isolating sources must reduce bad prefetches ({split_bad} vs {shared_bad})"
    );
    assert!(
        (split_good as f64) > 0.95 * shared_good as f64,
        "without sacrificing good ones ({split_good} vs {shared_good})"
    );
}

#[test]
fn victim_cache_serves_conflict_misses() {
    let base = run_one("base", SystemConfig::paper_default(), Workload::Gcc, N);
    let with_victim = run_one(
        "victim",
        SystemConfig::paper_default().with_victim_cache(8),
        Workload::Gcc,
        N,
    );
    // The victim cache absorbs direct-mapped conflict misses, which shows
    // up as a lower effective L1 miss cost — IPC must not regress.
    assert!(
        with_victim.ipc() >= 0.99 * base.ipc(),
        "victim cache must not hurt ({:.3} vs {:.3})",
        with_victim.ipc(),
        base.ipc()
    );
}

#[test]
fn victim_cache_census_stays_conserved() {
    let cfg = SystemConfig::paper_default()
        .with_filter(FilterKind::Pa)
        .with_victim_cache(8);
    let r = run_one("v", cfg.clone(), Workload::Mcf, N);
    assert_census_conserved(&r, census_slack(&cfg));
}

#[test]
fn correlation_prefetcher_contributes_on_repetitive_chases() {
    let mut cfg = SystemConfig::paper_default();
    cfg.prefetch.nsp = false;
    cfg.prefetch.sdp = false;
    cfg.prefetch.software = false;
    cfg.prefetch.correlation = true;
    // em3d's chase is a fixed permutation: miss successors repeat every
    // period, which is exactly what a Markov table learns.
    let r = run_one("corr", cfg, Workload::Em3d, N);
    let issued = r.stats.prefetches_issued.get(PrefetchSource::Stride);
    assert!(issued > 1_000, "correlation must fire ({issued})");
    let good = r.stats.prefetch_good.get(PrefetchSource::Stride);
    let bad = r.stats.prefetch_bad.get(PrefetchSource::Stride);
    assert!(
        good > bad,
        "learned successors should be mostly right ({good} good vs {bad} bad)"
    );
}

#[test]
fn stride_prefetcher_covers_strided_misses() {
    let mut cfg = SystemConfig::paper_default();
    cfg.prefetch.nsp = false;
    cfg.prefetch.sdp = false;
    cfg.prefetch.software = false;
    cfg.prefetch.stride = true;
    let r = run_one("stride", cfg, Workload::Wave5, N);
    let issued = r.stats.prefetches_issued.get(PrefetchSource::Stride);
    assert!(issued > 1_000, "RPT must fire on wave5 ({issued})");
    let good = r.stats.prefetch_good.get(PrefetchSource::Stride);
    assert!(
        good as f64 > 0.6 * issued as f64,
        "strided prefetches are mostly good ({good}/{issued})"
    );
}

#[test]
fn adaptive_gate_spares_accurate_prefetching() {
    // On a benchmark whose prefetches are mostly good, the adaptive gate
    // should keep the filter disengaged and lose fewer good prefetches
    // than the always-on filter.
    let mk = |adaptive: bool| {
        let mut cfg = SystemConfig::paper_default().with_filter(FilterKind::Pa);
        if adaptive {
            cfg.filter.adaptive_accuracy_threshold = Some(0.5);
        }
        run_one(
            if adaptive { "adaptive" } else { "always" },
            cfg,
            Workload::Wave5,
            N,
        )
    };
    let always = mk(false);
    let adaptive = mk(true);
    assert!(
        adaptive.stats.good_total() >= always.stats.good_total(),
        "gate must preserve good prefetches on an accurate workload ({} vs {})",
        adaptive.stats.good_total(),
        always.stats.good_total()
    );
}

#[test]
fn strict_filter_rejects_more_but_recovers_nothing() {
    let mk = |window: u64| {
        let mut cfg = SystemConfig::paper_default().with_filter(FilterKind::Pa);
        cfg.filter.recovery_window = window;
        run_one("x", cfg, Workload::Em3d, N)
    };
    let strict = mk(0);
    let recovering = mk(400);
    assert!(
        strict.stats.prefetches_filtered.total() > recovering.stats.prefetches_filtered.total(),
        "strict filter must reject more ({} vs {})",
        strict.stats.prefetches_filtered.total(),
        recovering.stats.prefetches_filtered.total()
    );
    assert!(
        strict.stats.good_total() < recovering.stats.good_total(),
        "and lose more good prefetches doing it"
    );
}

const FAMILY_GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/filter_family_perceptron.json"
);

/// Render the pinned perceptron cell of the `filter-family` experiment —
/// ijpeg under the equal-budget perceptron filter at the default seed —
/// as the golden JSON document. Any semantic drift in the perceptron's
/// features, training gate, recovery or hashing shows up here as a byte
/// diff long before the full head-to-head is re-measured.
fn perceptron_family_cell_json() -> String {
    let cfg = SystemConfig::paper_default().with_filter(FilterKind::Perceptron);
    let r = run_one("filter-family", cfg, Workload::Ijpeg, N);
    let doc = JsonValue::Object(vec![
        (
            "experiment".to_string(),
            JsonValue::Str("filter-family".to_string()),
        ),
        (
            "cell".to_string(),
            JsonValue::Str("perceptron/ijpeg".to_string()),
        ),
        ("instructions".to_string(), JsonValue::UInt(N)),
        ("stats".to_string(), r.stats.to_json()),
    ]);
    let mut text = doc.pretty();
    text.push('\n');
    text
}

#[test]
fn perceptron_family_cell_matches_committed_golden() {
    let golden = std::fs::read_to_string(FAMILY_GOLDEN_PATH).expect(
        "golden missing — regenerate with \
         `cargo test --test extensions -- --ignored regenerate_perceptron_family_golden`",
    );
    assert_eq!(
        perceptron_family_cell_json(),
        golden,
        "perceptron filter-family cell drifted from the committed golden"
    );
}

#[test]
#[ignore = "writes tests/golden/filter_family_perceptron.json"]
fn regenerate_perceptron_family_golden() {
    std::fs::write(FAMILY_GOLDEN_PATH, perceptron_family_cell_json()).expect("write golden");
}

#[test]
fn nsp_degree_scales_traffic() {
    let mk = |degree: u32| {
        let mut cfg = SystemConfig::paper_default();
        cfg.prefetch.nsp_degree = degree;
        run_one("x", cfg, Workload::Gzip, N)
    };
    let d1 = mk(1);
    let d4 = mk(4);
    assert!(
        d4.stats.prefetches_proposed.total() > 2 * d1.stats.prefetches_proposed.total(),
        "degree 4 must propose much more than degree 1 ({} vs {})",
        d4.stats.prefetches_proposed.total(),
        d1.stats.prefetches_proposed.total()
    );
}
