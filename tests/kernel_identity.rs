//! Cycle-identity drill for the skip-ahead kernel (DESIGN.md §14).
//!
//! The event-driven kernel is only allowed to *skip* cycles it can prove
//! the stepping kernel would have executed as no-ops, so the two kernels
//! must agree bit-for-bit on every statistic, every telemetry record and
//! every watchdog verdict. This drill pins that contract three ways:
//!
//! 1. The full 10-workload pinned-seed mix runs under the stepping kernel
//!    and must reproduce the committed golden JSON byte-for-byte — the
//!    reference semantics cannot drift silently.
//! 2. The same mix runs under the skip-ahead kernel and must match the
//!    same golden byte-for-byte.
//! 3. A property test throws randomized configurations at both kernels —
//!    fault injection, adversarial campaigns, telemetry intervals (jump
//!    barriers!), banked memory, prefetch buffers — and requires identical
//!    outcomes, successful or not.
//!
//! Regenerate the golden after an *intentional* semantic change with:
//! `cargo test --test kernel_identity -- --ignored regenerate`

mod common;

use ppf_sim::{KernelMode, Simulator, WatchdogConfig};
use ppf_types::telemetry::{IntervalRecord, TelemetryConfig};
use ppf_types::{FilterKind, JsonValue, PpfError, SimStats, SystemConfig, ToJson};
use ppf_workloads::{AdversarySpec, AdversaryStream, AttackKind, FaultSpec, FaultStream, Workload};
use proptest::prelude::*;

/// Pinned drill budget: long enough that every workload's prefetch funnel,
/// branch predictor and DRAM timing are exercised, short enough that the
/// stepping reference stays cheap in CI.
const DRILL_WARMUP: u64 = 20_000;
const DRILL_INSTRUCTIONS: u64 = 60_000;
const DRILL_SEED: u64 = 42;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/kernel_identity.json"
);

/// The drill machine: the paper's default with the PA filter, so the run
/// exercises the full funnel (generators → filter → queue → ports).
fn drill_config() -> SystemConfig {
    SystemConfig::paper_default().with_filter(FilterKind::Pa)
}

/// Run one drill cell under `kernel` and return its measured stats.
fn drill_stats(workload: Workload, kernel: KernelMode) -> SimStats {
    let mut sim = Simulator::with_seed(
        drill_config(),
        Box::new(workload.stream(DRILL_SEED)),
        DRILL_SEED,
    )
    .expect("valid config")
    .labeled("kernel-identity", workload.name())
    .with_kernel(kernel);
    sim.warmup(DRILL_WARMUP);
    sim.run(DRILL_INSTRUCTIONS).stats
}

/// Render the whole 10-workload mix as the golden JSON document.
fn mix_json(kernel: KernelMode) -> String {
    let cells: Vec<JsonValue> = Workload::ALL
        .iter()
        .map(|&w| {
            JsonValue::Object(vec![
                ("workload".to_string(), JsonValue::Str(w.name().to_string())),
                ("stats".to_string(), drill_stats(w, kernel).to_json()),
            ])
        })
        .collect();
    let doc = JsonValue::Object(vec![
        (
            "drill".to_string(),
            JsonValue::Str("kernel-identity".to_string()),
        ),
        ("seed".to_string(), JsonValue::UInt(DRILL_SEED)),
        ("warmup".to_string(), JsonValue::UInt(DRILL_WARMUP)),
        (
            "instructions".to_string(),
            JsonValue::UInt(DRILL_INSTRUCTIONS),
        ),
        ("cells".to_string(), JsonValue::Array(cells)),
    ]);
    let mut text = doc.pretty();
    text.push('\n');
    text
}

#[test]
fn stepping_kernel_matches_committed_golden() {
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect(
        "golden missing — regenerate with \
         `cargo test --test kernel_identity -- --ignored regenerate`",
    );
    assert_eq!(
        mix_json(KernelMode::Stepping),
        golden,
        "stepping (reference) kernel drifted from the committed golden"
    );
}

#[test]
fn skip_ahead_kernel_matches_committed_golden() {
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect(
        "golden missing — regenerate with \
         `cargo test --test kernel_identity -- --ignored regenerate`",
    );
    assert_eq!(
        mix_json(KernelMode::SkipAhead),
        golden,
        "skip-ahead kernel diverged from the stepping golden"
    );
}

#[test]
#[ignore = "writes tests/golden/kernel_identity.json from the stepping kernel"]
fn regenerate() {
    std::fs::write(GOLDEN_PATH, mix_json(KernelMode::Stepping)).expect("write golden");
}

/// One randomized scenario, run to completion (or structured failure)
/// under `kernel`.
struct Outcome {
    result: Result<SimStats, PpfError>,
    telemetry: Vec<IntervalRecord>,
}

#[derive(Debug, Clone)]
struct Scenario {
    workload: Workload,
    seed: u64,
    banked_memory: bool,
    prefetch_buffer: bool,
    filter: FilterKind,
    telemetry_interval: Option<u64>,
    adversary: Option<AdversarySpec>,
    /// Hang fault at this emitted-instruction index (the stream degrades
    /// into serially-dependent cold loads, tripping the stall watchdog —
    /// both kernels must report the identical verdict).
    hang_at: Option<u64>,
    warmup: u64,
    instructions: u64,
}

impl Scenario {
    fn config(&self) -> SystemConfig {
        let mut cfg = SystemConfig::paper_default().with_filter(self.filter);
        if self.banked_memory {
            cfg.mem.banks = 4;
            cfg.mem.bank_busy = 40;
        }
        if self.prefetch_buffer {
            cfg = cfg.with_prefetch_buffer();
        }
        cfg
    }

    fn run(&self, kernel: KernelMode) -> Outcome {
        let stream: Box<dyn ppf_cpu::InstStream> = match (self.adversary, self.hang_at) {
            (Some(adv), Some(at)) => Box::new(FaultStream::new(
                AdversaryStream::new(adv, self.workload, self.seed),
                FaultSpec::hang_at(at),
            )),
            (Some(adv), None) => Box::new(AdversaryStream::new(adv, self.workload, self.seed)),
            (None, Some(at)) => Box::new(FaultStream::new(
                self.workload.stream(self.seed),
                FaultSpec::hang_at(at),
            )),
            (None, None) => Box::new(self.workload.stream(self.seed)),
        };
        let mut sim = Simulator::with_seed(self.config(), stream, self.seed)
            .expect("valid config")
            .labeled("kernel-prop", self.workload.name())
            .with_kernel(kernel)
            .with_watchdog(WatchdogConfig {
                max_cpi: 10_000,
                stall_window: 20_000,
            });
        if let Some(interval) = self.telemetry_interval {
            sim = sim
                .with_telemetry(&TelemetryConfig::every(interval))
                .expect("valid telemetry config");
        }
        let result = sim
            .warmup_checked(self.warmup)
            .and_then(|()| sim.run_checked(self.instructions).map(|r| r.stats));
        Outcome {
            result,
            telemetry: sim.take_telemetry_records(),
        }
    }
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    // The vendored proptest caps tuple strategies at 8 elements and has no
    // `option` module, so the ten dimensions are nested into two sub-tuples
    // and each Option is a (enabled, value) pair folded in `prop_map`.
    (
        (
            0..Workload::ALL.len(),
            0u64..1_000,
            any::<bool>(),
            any::<bool>(),
            prop_oneof![
                Just(FilterKind::None),
                Just(FilterKind::Pa),
                Just(FilterKind::Pc),
                Just(FilterKind::Perceptron)
            ],
            0u64..20_000,
            5_000u64..40_000,
        ),
        (
            (any::<bool>(), 64u64..4_096),
            (
                any::<bool>(),
                0..AttackKind::ALL.len(),
                0u64..20_000,
                1u64..30_000,
            ),
            (any::<bool>(), 5_000u64..40_000),
        ),
    )
        .prop_map(
            |(
                (w, seed, banked, buffer, filter, warmup, insts),
                ((telemetry_on, interval), (adv_on, kind, start, len), (hang_on, hang)),
            )| Scenario {
                workload: Workload::ALL[w],
                seed,
                banked_memory: banked,
                prefetch_buffer: buffer,
                filter,
                telemetry_interval: telemetry_on.then_some(interval),
                adversary: adv_on
                    .then(|| AdversarySpec::window(AttackKind::ALL[kind], start, start + len)),
                hang_at: hang_on.then_some(hang),
                warmup,
                instructions: insts,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever the scenario — fault, adversary, telemetry barriers,
    /// banked DRAM — the two kernels agree on the complete outcome:
    /// identical stats and telemetry on success, the identical structured
    /// error (same message, same cycle numbers) on a watchdog verdict.
    #[test]
    fn kernels_never_diverge(scenario in scenario_strategy()) {
        let stepping = scenario.run(KernelMode::Stepping);
        let skip = scenario.run(KernelMode::SkipAhead);
        match (&stepping.result, &skip.result) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "stats diverged: {:?}", scenario),
            (Err(a), Err(b)) => {
                prop_assert_eq!(a.to_string(), b.to_string(), "errors diverged: {:?}", scenario)
            }
            (a, b) => prop_assert!(
                false,
                "verdicts diverged for {:?}: stepping {:?} vs skip-ahead {:?}",
                scenario,
                a.as_ref().map(|_| "ok"),
                b.as_ref().map(|_| "ok")
            ),
        }
        prop_assert_eq!(
            &stepping.telemetry,
            &skip.telemetry,
            "telemetry records diverged: {:?}",
            scenario
        );
    }
}
