//! End-to-end determinism: a run is a pure function of (config, workload,
//! seed) — across repeated runs, across the parallel sweep runner, and
//! across every machine variant.

mod common;

use common::run_one;
use ppf::sim::{run_grid, RunSpec, Simulator};
use ppf::types::{FilterKind, SystemConfig};
use ppf::workloads::Workload;

const N: u64 = 120_000;

#[test]
fn identical_runs_produce_identical_stats() {
    for kind in [FilterKind::None, FilterKind::Pa, FilterKind::Pc] {
        let run = || {
            let cfg = SystemConfig::paper_default().with_filter(kind);
            let mut sim = Simulator::new(cfg, Workload::Mcf.stream(123)).unwrap();
            sim.warmup(40_000);
            sim.run(N).stats
        };
        assert_eq!(run(), run(), "{kind:?}");
    }
}

#[test]
fn different_seeds_differ() {
    let run = |seed: u64| {
        let mut sim =
            Simulator::new(SystemConfig::paper_default(), Workload::Gcc.stream(seed)).unwrap();
        sim.run(N).stats
    };
    assert_ne!(run(1), run(2));
}

#[test]
fn parallel_runner_is_bit_identical_to_sequential() {
    let specs: Vec<RunSpec> = Workload::ALL
        .iter()
        .take(4)
        .map(|&w| RunSpec::new("x", SystemConfig::paper_default(), w).instructions(N))
        .collect();
    let seq: Vec<_> = specs.iter().map(RunSpec::run).collect();
    let par = run_grid(specs);
    for (a, b) in seq.iter().zip(par.iter()) {
        assert_eq!(a.stats, b.stats, "{}", a.workload);
    }
}

#[test]
fn variant_machines_are_deterministic_too() {
    let variants = [
        SystemConfig::paper_default().with_l1_32k(),
        SystemConfig::paper_default().with_l1_ports(5),
        SystemConfig::paper_default().with_prefetch_buffer(),
        SystemConfig::paper_default()
            .with_filter(FilterKind::Pa)
            .with_table_entries(1024),
    ];
    for cfg in variants {
        let run = || {
            let mut sim = Simulator::new(cfg.clone(), Workload::Gzip.stream(9)).unwrap();
            sim.run(N).stats
        };
        assert_eq!(run(), run());
    }
}

#[test]
fn report_json_round_trip() {
    use ppf::types::{FromJson, ToJson};
    let report = run_one("label", SystemConfig::paper_default(), Workload::Bh, N);
    let json = report.to_json_string();
    let back = ppf::sim::SimReport::from_json_str(&json).unwrap();
    assert_eq!(back, report);
}
