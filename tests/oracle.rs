//! The differential-oracle conformance campaign (DESIGN.md §11).
//!
//! Each campaign drives one optimized structure and its naive reference
//! model in lockstep over seeded random event streams. A divergence is
//! delta-minimized and written out as a self-contained JSONL repro before
//! the test fails; the committed corpus under `tests/repros/` replays on
//! every CI pass so once-found divergences stay pinned.
//!
//! Campaign size is `PPF_ORACLE_CASES` per structure (default 1000); CI
//! sets a smaller budget on pull requests (see ci.sh and the workflow).

mod common;

use ppf_oracle::repro::{self, Repro};
use ppf_oracle::{generate, harness_for, minimize, run_lockstep, Harness, RefFilter};
use ppf_sim::{fanned_seed, FilterTapEvent};
use ppf_types::{FilterKind, JsonValue, SystemConfig};
use ppf_workloads::Workload;
use std::path::{Path, PathBuf};

/// Randomized cases per structure. The issue's floor is 1000; pull-request
/// CI trims this via the environment to keep the shard fast.
fn oracle_cases() -> u64 {
    match std::env::var("PPF_ORACLE_CASES") {
        Ok(v) => v
            .parse()
            .expect("PPF_ORACLE_CASES must be an unsigned integer"),
        Err(_) => 1000,
    }
}

/// Where the committed, replay-on-every-run corpus lives.
fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/repros")
}

/// Where freshly minimized divergence repros are written. Deliberately NOT
/// the committed corpus: a red campaign must not dirty the tree. Promote a
/// case by moving it into `tests/repros/` (see its README.md).
fn divergence_dir() -> PathBuf {
    std::env::var_os("PPF_ORACLE_REPRO_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new(env!("CARGO_MANIFEST_DIR")).join("target/oracle-repros"))
}

/// Run the randomized campaign for one structure kind: on the first
/// divergence, minimize it, write a replayable repro, and fail with the
/// full story.
fn campaign(kind: &str, base_seed: u64) {
    let cases = oracle_cases();
    for s in 0..cases {
        let seed = fanned_seed(base_seed, s as u32);
        let (config, events) = generate::case(kind, seed);
        let mut h = harness_for(kind, &config)
            .unwrap_or_else(|e| panic!("{kind} seed {seed:#x}: generator made a bad config: {e}"));
        let Some(d) = run_lockstep(&mut *h, &events) else {
            continue;
        };
        let minimized = minimize(&mut *h, &events);
        let r = Repro::capture(
            &*h,
            minimized,
            Some(format!("campaign kind={kind} seed={seed:#x}: {}", d.detail)),
        );
        r.replay().expect_err("minimized stream must still diverge");
        let name = format!("diverged-{kind}-{seed:016x}");
        let written = match repro::write_repro(&divergence_dir(), &name, &r) {
            Ok(p) => p.display().to_string(),
            Err(e) => format!("<write failed: {e}>"),
        };
        panic!(
            "{kind} campaign diverged (seed {seed:#x}, step {}): {}\n\
             event: {}\n\
             minimized to {} event(s); repro written to {written}\n\
             promote it into tests/repros/ to pin the case permanently",
            d.step,
            d.detail,
            d.event,
            r.events.len()
        );
    }
}

#[test]
fn cache_campaign() {
    campaign("cache", 0x0A11_CACE);
}

#[test]
fn filter_campaign() {
    campaign("filter", 0x0A11_F117);
}

#[test]
fn mshr_campaign() {
    campaign("mshr", 0x0A11_0517);
}

#[test]
fn ports_campaign() {
    campaign("ports", 0x0A11_7017);
}

/// Every committed repro must parse and replay clean on the current tree —
/// a once-found (or hand-pinned) behaviour that drifts is a regression.
#[test]
fn replay_committed_corpus() {
    let dir = corpus_dir();
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("committed corpus missing at {}: {e}", dir.display()))
        .filter_map(|entry| {
            let path = entry.expect("readable corpus dir").path();
            (path.extension().is_some_and(|x| x == "jsonl")).then_some(path)
        })
        .collect();
    files.sort();
    assert!(
        files.len() >= 7,
        "seed corpus must hold at least 7 cases (the two attack campaigns and the two perceptron pins included), found {}: {files:?}",
        files.len()
    );
    for f in &files {
        let text = std::fs::read_to_string(f).expect("readable repro");
        let r = Repro::parse_jsonl(&text)
            .unwrap_or_else(|e| panic!("{} does not parse: {e}", f.display()));
        r.replay()
            .unwrap_or_else(|e| panic!("{} no longer replays clean: {e}", f.display()));
    }
}

// ---------------------------------------------------------------------------
// Shrinker validation on a synthetic harness
// ---------------------------------------------------------------------------

/// A harness with a known minimal failure: it "diverges" on the second
/// `bad` event it sees, whatever noise surrounds them. The true minimum is
/// therefore exactly two `bad` events.
struct ToyHarness {
    bad_seen: u32,
}

impl Harness for ToyHarness {
    fn kind(&self) -> &'static str {
        "toy"
    }

    fn config(&self) -> JsonValue {
        JsonValue::Null
    }

    fn reset(&mut self) {
        self.bad_seen = 0;
    }

    fn step(&mut self, event: &JsonValue) -> Result<(), String> {
        if event.get("op").and_then(JsonValue::as_str) == Some("bad") {
            self.bad_seen += 1;
            if self.bad_seen == 2 {
                return Err("second bad event".into());
            }
        }
        Ok(())
    }
}

#[test]
fn shrinker_finds_the_two_event_minimum() {
    let bad = JsonValue::parse(r#"{"op":"bad"}"#).unwrap();
    let mut events: Vec<JsonValue> = (0..40)
        .map(|i| JsonValue::parse(&format!(r#"{{"op":"noise","i":{i}}}"#)).unwrap())
        .collect();
    events[7] = bad.clone();
    events[23] = bad.clone();

    let mut h = ToyHarness { bad_seen: 0 };
    let min = minimize(&mut h, &events);
    assert_eq!(min, vec![bad.clone(), bad], "ddmin must reach the minimum");
    let d = run_lockstep(&mut h, &min).expect("minimized stream still diverges");
    assert_eq!(d.step, 1, "divergence sits on the last event");

    // The minimized stream survives the repro wire format byte-for-byte.
    let r = Repro::capture(&h, min.clone(), Some("synthetic shrinker check".into()));
    let parsed = Repro::parse_jsonl(&r.to_jsonl()).expect("round trip");
    assert_eq!(parsed.events, min);
    assert_eq!(parsed.kind, "toy");
}

#[test]
fn non_diverging_stream_is_returned_unchanged() {
    let events: Vec<JsonValue> = (0..10)
        .map(|i| JsonValue::parse(&format!(r#"{{"op":"noise","i":{i}}}"#)).unwrap())
        .collect();
    let mut h = ToyHarness { bad_seen: 0 };
    assert_eq!(minimize(&mut h, &events), events);
}

// ---------------------------------------------------------------------------
// End-to-end: the live simulator's filter traffic replays into the oracle
// ---------------------------------------------------------------------------

/// The sim-side tap records every decision the real pollution filter made
/// during a full simulation; replaying the stream into the untimed oracle
/// must reproduce every admit/drop decision and the exact final counter
/// state. This closes the loop between the unit-level campaign and the
/// integrated machine.
#[test]
fn live_sim_filter_traffic_replays_into_the_oracle() {
    let cfg = SystemConfig::paper_default().with_filter(FilterKind::Pa);
    let filter_cfg = cfg.filter.clone();
    let mut sim = common::sim(cfg, Workload::Em3d, 9);
    sim.mem_system_mut().enable_filter_tap();
    sim.run(60_000);
    let tap = sim.mem_system_mut().take_filter_tap();
    assert!(
        tap.len() > 1_000,
        "tap must see real traffic, got {} events",
        tap.len()
    );

    let mut oracle = RefFilter::new(&filter_cfg).expect("paper config is oracle-checkable");
    for (i, ev) in tap.iter().enumerate() {
        match *ev {
            FilterTapEvent::Lookup {
                line,
                pc,
                source,
                now,
                tenant,
                depth,
                admitted,
            } => {
                let o = oracle.lookup(line, pc, source, tenant, depth as u64, now);
                assert_eq!(
                    o, admitted,
                    "tap step {i}: oracle disagrees with the live decision on {ev:?}"
                );
            }
            FilterTapEvent::Evict {
                line,
                pc,
                source,
                tenant,
                depth,
                referenced,
            } => oracle.evict(line, pc, source, tenant, depth as u64, referenced),
            FilterTapEvent::DemandMiss { line, now } => oracle.demand_miss(line, now),
        }
    }

    let real = sim.mem_system().filter();
    assert_eq!(
        real.counter_snapshot(),
        oracle.counters().to_vec(),
        "final counter tables must match"
    );
    assert_eq!(real.chooser_snapshot().as_deref(), oracle.chooser());
    assert_eq!(*real.stats(), oracle.stats(), "final stats must match");
}

// ---------------------------------------------------------------------------
// Seed corpus (re)generation
// ---------------------------------------------------------------------------

/// The hand-pinned seed cases. Kept as literals so the committed files and
/// this source agree; `regenerate_seed_corpus` rewrites them. The two
/// `attack-*` cases pin the hardened-filter guarantees of DESIGN.md §12:
/// partition isolation under counter poisoning and keyed-hash de-aliasing
/// under a collision flood.
const SEED_CORPUS: &[(&str, &str)] = &[
    (
        "cache-pib-rib-eviction-feedback",
        r#"# A referenced prefetch leaves the cache as good (RIB set); an untouched
# one leaves as bad — the eviction feedback that trains the filter.
{"version":1,"kind":"cache","config":{"size_bytes":128,"line_bytes":32,"ways":2,"policy":"Lru"},"note":"PIB/RIB lifecycle: referenced prefetch evicts good, untouched prefetch evicts bad"}
{"op":"fill_prefetch","line":4,"pc":4096,"source":"Nsp"}
{"op":"probe","line":4,"write":false}
{"op":"fill_prefetch","line":6,"pc":4100,"source":"Sdp"}
{"op":"fill_demand","line":8}
{"op":"fill_demand","line":10}
{"op":"contains","line":8}
{"op":"invalidate","line":10}
"#,
    ),
    (
        "mshr-merge-and-replacement",
        r#"# Same-line inserts merge keeping the later completion; a full file
# replaces the first soonest-completing live entry.
{"version":1,"kind":"mshr","config":{"cap":2},"note":"merge keeps later ready_at; full file replaces first-minimal live slot"}
{"op":"insert","line":5,"ready_at":100,"now":0}
{"op":"insert","line":5,"ready_at":80,"now":10}
{"op":"ready_at","line":5,"now":20}
{"op":"insert","line":6,"ready_at":90,"now":20}
{"op":"insert","line":7,"ready_at":300,"now":20}
{"op":"live","now":50}
"#,
    ),
    (
        "filter-drop-and-recovery",
        r#"# Two bad evictions drive the counter below threshold, the next lookup is
# dropped and logged; a fresh demand miss recovers it, and a good eviction
# restores admission.
{"version":1,"kind":"filter","config":{"kind":"Pa","table_entries":64,"counter_bits":2,"counter_init":"WeaklyGood","adaptive_accuracy_threshold":null,"adaptive_window":1024,"recovery_window":100,"split_by_source":false,"hash_salt":0,"tenant_partitions":1},"note":"drop decision, reject-log recovery, re-admission"}
{"op":"evict","line":5,"pc":4096,"source":"Nsp","referenced":false}
{"op":"evict","line":5,"pc":4096,"source":"Nsp","referenced":false}
{"op":"lookup","line":5,"pc":4096,"source":"Nsp","now":50}
{"op":"demand_miss","line":5,"now":120}
{"op":"lookup","line":5,"pc":4096,"source":"Nsp","now":200}
{"op":"evict","line":5,"pc":4096,"source":"Nsp","referenced":true}
{"op":"lookup","line":5,"pc":4096,"source":"Nsp","now":300}
"#,
    ),
    (
        "attack-poison-partition-isolation",
        r#"# Counter-poisoning campaign against a partitioned (P=4) PA table: the
# attacking tenant (1) saturates its counter for line 5 bad and locks
# itself out, while the victim tenant (0) looking up the same line is
# still admitted — the poisoning physically cannot reach the victim's
# partition.
{"version":1,"kind":"filter","config":{"kind":"Pa","table_entries":64,"counter_bits":2,"counter_init":"WeaklyGood","adaptive_accuracy_threshold":null,"adaptive_window":1024,"recovery_window":100,"split_by_source":false,"hash_salt":0,"tenant_partitions":4},"note":"tenant 1 poisons its own partition; tenant 0 stays admitted"}
{"op":"evict","line":5,"pc":4096,"source":"Nsp","tenant":1,"referenced":false}
{"op":"evict","line":5,"pc":4096,"source":"Nsp","tenant":1,"referenced":false}
{"op":"lookup","line":5,"pc":4096,"source":"Nsp","tenant":1,"now":10}
{"op":"lookup","line":5,"pc":4096,"source":"Nsp","tenant":0,"now":11}
{"op":"lookup","line":5,"pc":4096,"source":"Nsp","tenant":2,"now":12}
"#,
    ),
    (
        "attack-alias-flood-salted-hash",
        r#"# Aliasing flood against the salted hash: lines 4295032837 and 8590065669
# are crafted to XOR-fold onto the victim line 5's slot under the plain
# hash (t | h<<16 | h<<32 folds to t), so an unhardened table would share
# one counter across all three. Under the keyed fold they scatter to
# distinct slots, and training the aliases bad leaves the victim admitted.
{"version":1,"kind":"filter","config":{"kind":"Pa","table_entries":64,"counter_bits":2,"counter_init":"WeaklyGood","adaptive_accuracy_threshold":null,"adaptive_window":1024,"recovery_window":100,"split_by_source":false,"hash_salt":6840346605343592461,"tenant_partitions":1},"note":"plain-hash collisions decorrelate under the keyed fold; victim line stays admitted"}
{"op":"evict","line":4295032837,"pc":4096,"source":"Nsp","tenant":0,"referenced":false}
{"op":"evict","line":4295032837,"pc":4096,"source":"Nsp","tenant":0,"referenced":false}
{"op":"evict","line":8590065669,"pc":4096,"source":"Nsp","tenant":0,"referenced":false}
{"op":"evict","line":8590065669,"pc":4096,"source":"Nsp","tenant":0,"referenced":false}
{"op":"lookup","line":4295032837,"pc":4096,"source":"Nsp","tenant":0,"now":10}
{"op":"lookup","line":5,"pc":4096,"source":"Nsp","tenant":0,"now":11}
"#,
    ),
    (
        "perceptron-weight-saturation-clamp",
        r#"# Sixteen bad trainings of one feature vector drive every selected weight
# one step past the -15 clamp boundary: the sixteenth train must be a
# no-op on the already-saturated weights (symmetric saturation), and two
# good trainings afterwards move them back off the rail by exactly two.
{"version":1,"kind":"filter","config":{"kind":"Perceptron","table_entries":64,"counter_bits":2,"counter_init":"WeaklyGood","adaptive_accuracy_threshold":null,"adaptive_window":1024,"recovery_window":100,"split_by_source":false,"hash_salt":0,"tenant_partitions":1},"note":"weight saturation pinned at the clamp boundary: train 16 is absorbed, the walk back is exact"}
{"op":"evict","line":5,"pc":4096,"source":"Nsp","depth":3,"referenced":false}
{"op":"evict","line":5,"pc":4096,"source":"Nsp","depth":3,"referenced":false}
{"op":"evict","line":5,"pc":4096,"source":"Nsp","depth":3,"referenced":false}
{"op":"evict","line":5,"pc":4096,"source":"Nsp","depth":3,"referenced":false}
{"op":"evict","line":5,"pc":4096,"source":"Nsp","depth":3,"referenced":false}
{"op":"evict","line":5,"pc":4096,"source":"Nsp","depth":3,"referenced":false}
{"op":"evict","line":5,"pc":4096,"source":"Nsp","depth":3,"referenced":false}
{"op":"evict","line":5,"pc":4096,"source":"Nsp","depth":3,"referenced":false}
{"op":"evict","line":5,"pc":4096,"source":"Nsp","depth":3,"referenced":false}
{"op":"evict","line":5,"pc":4096,"source":"Nsp","depth":3,"referenced":false}
{"op":"evict","line":5,"pc":4096,"source":"Nsp","depth":3,"referenced":false}
{"op":"evict","line":5,"pc":4096,"source":"Nsp","depth":3,"referenced":false}
{"op":"evict","line":5,"pc":4096,"source":"Nsp","depth":3,"referenced":false}
{"op":"evict","line":5,"pc":4096,"source":"Nsp","depth":3,"referenced":false}
{"op":"evict","line":5,"pc":4096,"source":"Nsp","depth":3,"referenced":false}
{"op":"evict","line":5,"pc":4096,"source":"Nsp","depth":3,"referenced":false}
{"op":"lookup","line":5,"pc":4096,"source":"Nsp","depth":3,"now":50}
{"op":"evict","line":5,"pc":4096,"source":"Nsp","depth":3,"referenced":true}
{"op":"evict","line":5,"pc":4096,"source":"Nsp","depth":3,"referenced":true}
{"op":"lookup","line":5,"pc":4096,"source":"Nsp","depth":3,"now":60}
"#,
    ),
    (
        "perceptron-threshold-crossing-recovery",
        r#"# Threshold-crossing train events: one bad training leaves a neighbouring
# vector (same PC, depth and accuracy bucket, different line) at sum -3 —
# one below the admit threshold of -2 — so it is rejected; a single good
# training elsewhere moves the accuracy bucket and lifts the same vector
# across the threshold. The rejected lookup then recovers via demand miss:
# target-only recovery bumps the pc/line/offset weights by +1 each (shared
# depth and accuracy weights stay put), landing the final lookup at +2.
{"version":1,"kind":"filter","config":{"kind":"Perceptron","table_entries":64,"counter_bits":2,"counter_init":"WeaklyGood","adaptive_accuracy_threshold":null,"adaptive_window":1024,"recovery_window":100,"split_by_source":false,"hash_salt":0,"tenant_partitions":1},"note":"sum -3 rejects, bucket shift re-admits at -1, target-only recovery lifts the vector to +2"}
{"op":"evict","line":5,"pc":4096,"source":"Nsp","depth":3,"referenced":false}
{"op":"lookup","line":6,"pc":4096,"source":"Nsp","depth":3,"now":10}
{"op":"evict","line":40,"pc":4100,"source":"Nsp","depth":1,"referenced":true}
{"op":"lookup","line":6,"pc":4096,"source":"Nsp","depth":3,"now":20}
{"op":"demand_miss","line":6,"now":30}
{"op":"lookup","line":6,"pc":4096,"source":"Nsp","depth":3,"now":40}
"#,
    ),
];

/// Rewrite `tests/repros/` from the literals above. Run with
/// `cargo test --test oracle regenerate_seed_corpus -- --ignored` after
/// editing a case; every case is validated (parse + clean replay) before
/// anything is written.
#[test]
#[ignore = "writes into the source tree; run explicitly to refresh the corpus"]
fn regenerate_seed_corpus() {
    let dir = corpus_dir();
    std::fs::create_dir_all(&dir).expect("create corpus dir");
    for (name, text) in SEED_CORPUS {
        let r = Repro::parse_jsonl(text).unwrap_or_else(|e| panic!("{name} does not parse: {e}"));
        r.replay()
            .unwrap_or_else(|e| panic!("{name} does not replay clean: {e}"));
        std::fs::write(dir.join(format!("{name}.jsonl")), text).expect("write corpus case");
    }
}
