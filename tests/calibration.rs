//! Table 2 calibration: with prefetching off, every workload model's L1 and
//! L2 miss rates must land near the paper's measurements. This is the
//! validity test for the whole synthetic-workload substitution — if it
//! drifts, every downstream figure drifts with it.

mod common;

use common::close;
use ppf::sim::{experiments, run_grid};
use ppf::workloads::Workload;
use std::sync::OnceLock;

/// Measured rates for one benchmark, prefetch off, after warm-up. Routed
/// through the same [`experiments::calibration`] grid (RunSpec seeding,
/// warm-up scaling, parallel `run_grid`) that `figures calibrate` uses, so
/// the test and the diagnostic subcommand can never disagree about
/// methodology. Memoized: three tests share the measurements.
fn measure(w: Workload) -> (f64, f64) {
    static CACHE: OnceLock<Vec<(f64, f64)>> = OnceLock::new();
    let all = CACHE.get_or_init(|| {
        run_grid(experiments::calibration(1_000_000))
            .into_iter()
            .map(|r| (r.stats.l1.miss_rate(), r.stats.l2.miss_rate()))
            .collect()
    });
    let idx = Workload::ALL.iter().position(|&x| x == w).expect("known");
    all[idx]
}

#[test]
fn table2_l1_miss_rates_match_paper() {
    let mut failures = Vec::new();
    for w in Workload::ALL {
        let (l1, _) = measure(w);
        let target = w.spec().expect_l1_miss;
        // 25% relative or 1.5 points absolute — the paper's own numbers
        // come from different inputs and 300M-instruction runs.
        if !close(l1, target, 0.25, 0.015) {
            failures.push(format!("{w}: L1 {l1:.4} vs paper {target:.4}"));
        }
    }
    assert!(
        failures.is_empty(),
        "L1 calibration drift:\n{}",
        failures.join("\n")
    );
}

#[test]
fn table2_l2_miss_rates_match_paper() {
    let mut failures = Vec::new();
    for w in Workload::ALL {
        let (_, l2) = measure(w);
        let target = w.spec().expect_l2_miss;
        // L2 local rates are noisier (small denominators): 35% relative or
        // 3 points absolute.
        if !close(l2, target, 0.35, 0.03) {
            failures.push(format!("{w}: L2 {l2:.4} vs paper {target:.4}"));
        }
    }
    assert!(
        failures.is_empty(),
        "L2 calibration drift:\n{}",
        failures.join("\n")
    );
}

#[test]
fn miss_rates_ordering_matches_paper() {
    // Relative ordering is sturdier than absolute values: em3d must be the
    // L1-miss outlier; gzip the L2-miss leader; bh/gap near the L1 bottom.
    let rates: Vec<(Workload, f64, f64)> = Workload::ALL
        .iter()
        .map(|&w| {
            let (l1, l2) = measure(w);
            (w, l1, l2)
        })
        .collect();
    let l1_max = rates.iter().max_by(|a, b| a.1.total_cmp(&b.1)).unwrap();
    assert_eq!(l1_max.0, Workload::Em3d, "em3d has the worst L1 miss rate");
    let l2_max = rates.iter().max_by(|a, b| a.2.total_cmp(&b.2)).unwrap();
    assert!(
        matches!(l2_max.0, Workload::Gzip | Workload::Perimeter),
        "gzip/perimeter lead L2 misses, got {}",
        l2_max.0
    );
    let wave5_l1 = rates.iter().find(|r| r.0 == Workload::Wave5).unwrap().1;
    let gap_l1 = rates.iter().find(|r| r.0 == Workload::Gap).unwrap().1;
    assert!(wave5_l1 > 2.0 * gap_l1, "wave5 L1 misses dwarf gap's");
}
