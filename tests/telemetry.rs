//! Integration tests for the interval-telemetry subsystem.
//!
//! The load-bearing guarantee: telemetry is an observer, never an actor.
//! A run with telemetry at *any* sampling interval must produce the same
//! `SimStats` as the same run with telemetry off — the property the
//! figures pipeline relies on when it instruments sweeps, and the one the
//! bench-smoke throughput gate protects on the off path.

mod common;

use ppf_types::telemetry::{self, JsonlSink, TelemetryConfig};
use ppf_types::{SimStats, SystemConfig};
use ppf_workloads::Workload;
use proptest::prelude::*;

const N: u64 = 40_000;

fn run_with(telemetry: Option<TelemetryConfig>, workload: Workload, seed: u64) -> SimStats {
    common::run_with_telemetry(telemetry, workload, seed, N)
}

#[test]
fn telemetry_off_and_disabled_and_default_are_identical() {
    // Three constructions of "off": never attached, attached-but-disabled,
    // and the default config. All must be bit-identical.
    let plain = run_with(None, Workload::Em3d, 42);
    let disabled = run_with(Some(TelemetryConfig::default()), Workload::Em3d, 42);
    let explicit = run_with(
        Some(TelemetryConfig {
            enabled: false,
            interval_cycles: 123,
        }),
        Workload::Em3d,
        42,
    );
    assert_eq!(plain, disabled);
    assert_eq!(plain, explicit);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // The tentpole property: no sampling interval, however pathological,
    // perturbs the simulation.
    #[test]
    fn any_sampling_interval_leaves_stats_unchanged(
        interval in 1u64..20_000,
        seed in 0u64..1_000,
    ) {
        let baseline = run_with(None, Workload::Mcf, seed);
        let sampled = run_with(Some(TelemetryConfig::every(interval)), Workload::Mcf, seed);
        prop_assert_eq!(baseline, sampled);
    }
}

#[test]
fn real_run_records_round_trip_through_jsonl_sink() {
    let mut sim = common::sim(SystemConfig::paper_default(), Workload::Wave5, 7)
        .with_telemetry(&TelemetryConfig::every(2_000))
        .unwrap();
    sim.run(N);
    let records = sim.take_telemetry_records();
    assert!(!records.is_empty());

    // Text round trip.
    let text = telemetry::to_jsonl(&records);
    assert_eq!(telemetry::parse_jsonl(&text).unwrap(), records);

    // Disk round trip through the atomic sink.
    let dir = std::env::temp_dir().join("ppf-telemetry-integration-test");
    std::fs::create_dir_all(&dir).unwrap();
    let sink = JsonlSink::new(dir.join("run.jsonl"));
    sink.write(&records).unwrap();
    assert_eq!(sink.read().unwrap(), records);
    std::fs::remove_dir_all(&dir).ok();
}
