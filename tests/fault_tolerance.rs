//! Fault drills for the experiment engine: panic isolation, the simulator
//! watchdog, seed fan-out, and structured-error plumbing — the acceptance
//! scenario of the robustness layer (DESIGN.md §9).

mod common;

use common::{drill_watchdog, wedged_config};
use ppf_sim::experiments::{run_grid_seeds_outcomes, CellOutcome};
use ppf_sim::{fanned_seed, run_grid, run_grid_outcomes, RunSpec, Simulator, WatchdogConfig};
use ppf_types::{FromJson, PpfErrorKind, SystemConfig, ToJson};
use ppf_workloads::{FaultSpec, Workload};

const N: u64 = 8_000;

/// The acceptance drill: a 10-workload grid with one injected panicking
/// cell and one wedged cell completes with 8 Ok / 2 Failed structured
/// outcomes, and the surviving cells' reports are byte-identical to a
/// clean run of the same 8 specs.
#[test]
fn grid_survives_panicking_and_wedged_cells() {
    let panic_victim = Workload::ALL[2];
    let hang_victim = Workload::ALL[5];
    let grid: Vec<RunSpec> = Workload::ALL
        .iter()
        .map(|&w| {
            let spec = RunSpec::new("drill", SystemConfig::paper_default(), w).instructions(N);
            if w == panic_victim {
                spec.with_fault(FaultSpec::panic_at(1_000))
            } else if w == hang_victim {
                RunSpec::new("drill", wedged_config(), w)
                    .instructions(N)
                    .with_fault(FaultSpec::hang_at(0))
                    .with_watchdog(drill_watchdog())
            } else {
                spec
            }
        })
        .collect();
    let clean: Vec<RunSpec> = grid.iter().filter(|s| s.fault.is_none()).cloned().collect();

    let outcomes = run_grid_outcomes(grid);
    assert_eq!(outcomes.len(), 10);
    assert_eq!(outcomes.iter().filter(|o| o.is_ok()).count(), 8);

    // Outcome order matches input order, so the two failures sit at the
    // injected indices with the expected error kinds.
    let panic_failure = outcomes[2].failure().expect("panic cell failed");
    assert_eq!(panic_failure.error.kind, PpfErrorKind::CellPanic);
    assert_eq!(panic_failure.workload, panic_victim.name());
    assert_eq!(
        panic_failure.attempts, 2,
        "deterministic failure retried once"
    );
    assert!(
        panic_failure.error.message.contains("injected fault"),
        "panic payload preserved: {}",
        panic_failure.error
    );

    let hang_failure = outcomes[5].failure().expect("wedged cell failed");
    assert_eq!(hang_failure.error.kind, PpfErrorKind::ForwardProgressStall);
    assert_eq!(hang_failure.workload, hang_victim.name());
    assert_eq!(hang_failure.attempts, 2);
    // The pipeline snapshot names the stall and the run identity.
    let rendered = hang_failure.error.to_string();
    assert!(rendered.contains("no instruction retired"), "{rendered}");
    assert!(rendered.contains(hang_victim.name()), "{rendered}");

    // The 8 survivors are byte-identical to a clean run of the same specs.
    let survivors: Vec<_> = outcomes.iter().filter_map(CellOutcome::report).collect();
    let clean_reports = run_grid(clean);
    assert_eq!(survivors.len(), clean_reports.len());
    for (s, c) in survivors.iter().zip(clean_reports.iter()) {
        assert_eq!(s.workload, c.workload);
        assert_eq!(
            s.stats, c.stats,
            "fault isolation must not perturb {}",
            c.workload
        );
    }
}

/// The cycle-ceiling half of the watchdog: a healthy workload under an
/// absurdly tight CPI bound times out with a `watchdog-timeout` error
/// carrying the run identity and progress snapshot.
#[test]
fn watchdog_cycle_ceiling_trips() {
    let mut sim = Simulator::with_seed(
        SystemConfig::paper_default(),
        Box::new(Workload::Gzip.stream(7)),
        7,
    )
    .expect("valid config")
    .labeled("ceiling", Workload::Gzip.name())
    .with_watchdog(WatchdogConfig {
        max_cpi: 1,
        stall_window: u64::MAX,
    });
    let err = sim.run_checked(50_000).expect_err("CPI 1 is unreachable");
    assert_eq!(err.kind, PpfErrorKind::WatchdogTimeout);
    let rendered = err.to_string();
    assert!(rendered.contains("cycle ceiling exceeded"), "{rendered}");
    assert!(rendered.contains("ceiling/gzip seed 7"), "{rendered}");
}

/// Within bounds, the watchdogged loop is cycle-for-cycle identical to
/// the pre-watchdog machine: run_checked and run agree.
#[test]
fn watchdog_is_invisible_to_healthy_runs() {
    let mk = || {
        Simulator::with_seed(
            SystemConfig::paper_default(),
            Box::new(Workload::Em3d.stream(11)),
            11,
        )
        .expect("valid config")
    };
    let a = mk().run_checked(N).expect("healthy run");
    let b = mk().run(N);
    assert_eq!(a.stats, b.stats);
}

/// Seed fan-out regression: the old `base + 1_000·s` scheme collided for
/// base seeds differing by small multiples of 1000 (42+1000 == 1042+0);
/// SplitMix64 derivation keeps every (base, s) pair distinct, and s=0 is
/// the base itself so single-seed grids are unchanged.
#[test]
fn fanned_seeds_are_pairwise_distinct() {
    let bases = [42u64, 1_042, 2_042];
    let mut seen = Vec::new();
    for &base in &bases {
        assert_eq!(fanned_seed(base, 0), base, "s=0 must be the base seed");
        for s in 0..5u32 {
            seen.push(fanned_seed(base, s));
        }
    }
    let mut deduped = seen.clone();
    deduped.sort_unstable();
    deduped.dedup();
    assert_eq!(
        deduped.len(),
        seen.len(),
        "fanned seeds must be pairwise distinct: {seen:?}"
    );
}

/// A cell that fails under one fanned seed fails the merged outcome while
/// its healthy neighbours still merge normally.
#[test]
fn seed_fanout_propagates_cell_failure() {
    let healthy =
        RunSpec::new("seeds", SystemConfig::paper_default(), Workload::Gzip).instructions(N);
    let faulty = RunSpec::new("seeds", SystemConfig::paper_default(), Workload::Mcf)
        .instructions(N)
        .with_fault(FaultSpec::panic_at(500));
    let merged = run_grid_seeds_outcomes(vec![healthy, faulty], 2);
    assert_eq!(merged.len(), 2);
    let ok = merged[0].report().expect("healthy cell merges");
    assert!(ok.stats.instructions >= 2 * N, "both seeds merged");
    let failure = merged[1].failure().expect("faulty cell fails");
    assert_eq!(failure.error.kind, PpfErrorKind::CellPanic);
}

/// Structured errors round-trip through the in-repo JSON layer with kind,
/// message and context chain intact (the checkpoint appendix relies on
/// this).
#[test]
fn cell_failure_errors_serialize() {
    let outcomes = run_grid_outcomes(vec![RunSpec::new(
        "json",
        SystemConfig::paper_default(),
        Workload::Bh,
    )
    .instructions(2_000)
    .with_fault(FaultSpec::panic_at(100))]);
    let failure = outcomes[0].failure().expect("fault fails the cell");
    let back =
        ppf_types::PpfError::from_json_str(&failure.error.to_json_string()).expect("round trip");
    assert_eq!(back, failure.error);
    assert_eq!(back.kind, PpfErrorKind::CellPanic);
    assert!(!back.context.is_empty(), "context chain preserved");
}

#[test]
fn invalid_config_surfaces_structured_error() {
    let mut cfg = SystemConfig::paper_default();
    cfg.prefetch.queue_len = 0;
    let err = Simulator::with_seed(cfg, Box::new(Workload::Gcc.stream(1)), 1)
        .err()
        .expect("invalid config rejected");
    assert_eq!(err.kind, PpfErrorKind::ConfigInvalid);
    assert!(err.to_string().contains("queue length"), "{err}");
}
